"""The deterministic OpenMP-runtime simulator.

Consumes a :class:`~repro.parallel.plan.SimPlan` and a
:class:`~repro.parallel.machine.MachineConfig`, produces per-phase and
per-thread timings.  The model, phase by phase:

1. Tasks are distributed with OpenMP *static* scheduling (contiguous
   chunks, matching ``#pragma omp for`` without a ``schedule`` clause on
   the paper-era GCC).
2. Each task costs ``compute + memory * contention(p, locality) *
   locality_factor * working_set_factor(p) * footprint_factor`` cycles.
   The working-set factor is thread-scaled: a task streaming an
   over-cache working set only suffers once the shared bus is contended
   (no penalty at p = 1).
3. The phase's busy time is its slowest thread (load imbalance appears
   here); a barrier phase additionally charges ``phase_cycles(p)``.
4. Critical-section work serializes *across* threads: the phase cannot
   finish before either its slowest thread or the drained critical queue.
5. Each parallel region charges one fork-join.

Everything is a pure function of its inputs — runs are exactly
reproducible, which is the point of simulating the testbed instead of
timing GIL-bound Python threads (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPhase, SimPlan


@dataclass(frozen=True)
class PhaseResult:
    """Timing of one simulated phase."""

    name: str
    busy_cycles_per_thread: np.ndarray
    critical_cycles: float
    sync_cycles: float
    total_cycles: float

    @property
    def makespan_cycles(self) -> float:
        """Slowest thread's busy time (before sync/critical charges)."""
        if len(self.busy_cycles_per_thread) == 0:
            return 0.0
        return float(np.max(self.busy_cycles_per_thread))

    @property
    def imbalance(self) -> float:
        """Makespan over mean busy time (1.0 = perfectly balanced)."""
        busy = self.busy_cycles_per_thread
        mean = float(np.mean(busy)) if len(busy) else 0.0
        if mean == 0.0:
            return 1.0
        return self.makespan_cycles / mean


@dataclass(frozen=True)
class SimResult:
    """Timing of a full plan execution."""

    plan_name: str
    n_threads: int
    phase_results: List[PhaseResult]
    fork_join_cycles: float
    total_cycles: float
    machine: MachineConfig

    @property
    def seconds(self) -> float:
        """Simulated wall-clock seconds."""
        return self.machine.cycles_to_seconds(self.total_cycles)

    def phase_breakdown(self) -> Dict[str, float]:
        """Per-phase cycle totals keyed by phase name (summed over repeats)."""
        out: Dict[str, float] = {}
        for p in self.phase_results:
            out[p.name] = out.get(p.name, 0.0) + p.total_cycles
        return out


def _thread_of_task(n_tasks: int, n_threads: int) -> np.ndarray:
    """Static-schedule owner thread of each task (contiguous chunks)."""
    base = n_tasks // n_threads
    extra = n_tasks % n_threads
    sizes = np.full(n_threads, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(n_threads, dtype=np.int64), sizes)


def _task_cycles(
    phase: SimPhase,
    machine: MachineConfig,
    n_threads: int,
    serial: bool,
) -> np.ndarray:
    """Effective per-task cycles (excluding critical serialization)."""
    loc = machine.locality_factor(phase.locality)
    if serial:
        contention = 1.0
        fp = 1.0
        ws_factor = 1.0
    else:
        contention = machine.mem_contention(n_threads, phase.locality)
        fp = machine.footprint_factor(phase.footprint_bytes)
        ws_factor = machine.working_set_factor_array(phase.working_set, n_threads)
    return phase.compute + phase.memory * (contention * loc * fp) * ws_factor


def _simulate_phase(
    phase: SimPhase,
    machine: MachineConfig,
    n_threads: int,
    serial: bool,
) -> PhaseResult:
    p = 1 if serial else n_threads
    cycles = _task_cycles(phase, machine, n_threads, serial)
    if phase.n_tasks:
        owners = _thread_of_task(phase.n_tasks, p)
        busy = np.bincount(owners, weights=cycles, minlength=p)
    else:
        busy = np.zeros(p)
    n_crit = phase.total_critical_ops()
    serialized = phase.total_serialized()
    if not serial:
        critical_total = serialized + n_crit * machine.critical_cycles(n_threads)
    else:
        # uncontended lock still costs its base entry fee; held work runs
        # at plain speed
        critical_total = serialized + n_crit * machine.critical_base_cycles
    sync = 0.0
    if phase.barrier and not serial:
        sync = machine.phase_cycles(n_threads)
    makespan = float(np.max(busy)) if len(busy) else 0.0
    if critical_total:
        if serial:
            total_busy = makespan + critical_total
        else:
            # the serialized critical lane overlaps with parallel compute:
            # the phase cannot finish before either the slowest thread or
            # the drained critical queue
            total_busy = max(makespan, critical_total) + min(
                makespan, critical_total
            ) / max(n_threads, 1)
    else:
        total_busy = makespan
    return PhaseResult(
        name=phase.name,
        busy_cycles_per_thread=busy,
        critical_cycles=critical_total,
        sync_cycles=sync,
        total_cycles=total_busy + sync,
    )


def simulate(
    plan: SimPlan,
    machine: MachineConfig,
    n_threads: int,
) -> SimResult:
    """Run a plan on the simulated machine with ``n_threads`` threads.

    ``n_threads`` beyond ``machine.n_cores`` is rejected: the model has no
    oversubscription semantics (neither do the paper's experiments).
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if n_threads > machine.n_cores:
        raise ValueError(
            f"n_threads={n_threads} exceeds machine cores {machine.n_cores}"
        )
    serial = plan.serial_overheads
    phase_results = [
        _simulate_phase(phase, machine, n_threads, serial)
        for phase in plan.phases
    ]
    fork_join = (
        0.0 if serial else plan.n_parallel_regions * machine.fork_join_cycles(n_threads)
    )
    total = fork_join + sum(p.total_cycles for p in phase_results)
    return SimResult(
        plan_name=plan.name,
        n_threads=n_threads,
        phase_results=phase_results,
        fork_join_cycles=fork_join,
        total_cycles=total,
        machine=machine,
    )


def speedup(
    serial_result: SimResult, parallel_result: SimResult
) -> float:
    """Paper's speedup definition: serial runtime / parallel runtime."""
    if parallel_result.total_cycles <= 0:
        raise ValueError("parallel runtime must be positive")
    return serial_result.total_cycles / parallel_result.total_cycles
