"""Execution plans: what a strategy asks the (simulated) runtime to do.

A :class:`SimPlan` is the strategy-agnostic intermediate representation
between "how a reduction strategy organizes the EAM computation" and "how
long that takes on a machine".  Each :class:`SimPhase` corresponds to one
OpenMP worksharing construct (a ``#pragma omp for`` over its tasks,
terminated by the implicit barrier); phases execute in order.  Parallel
*regions* (fork-join boundaries) group consecutive phases.

Phases store their task costs as parallel NumPy arrays (one slot per task)
so plans with tens of thousands of subdomain tasks — the paper's large
cases under 3-D decomposition — stay cheap to build and simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


def _as_task_array(values, n_tasks: int, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(n_tasks, float(arr))
    if arr.shape != (n_tasks,):
        raise ValueError(f"{name} must have shape ({n_tasks},), got {arr.shape}")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


@dataclass(frozen=True)
class SimPhase:
    """One worksharing construct: ``n_tasks`` iterations over threads.

    Per-task cost arrays (scalar broadcasts to all tasks):

    * ``compute`` — cycles immune to memory effects.
    * ``memory`` — cycles of cache/memory traffic; the simulator scales
      these by bandwidth contention, data-layout locality, and the task's
      working-set fit.
    * ``critical_ops`` — critical-section entries (scatter updates under a
      lock for CS, merge chunks for SAP); their serialized cost is charged
      phase-wide.
    * ``serialized`` — cycles that run while *holding* the lock (SAP's
      private-array merge).
    * ``working_set`` — resident bytes the task touches repeatedly
      (subdomain + halo arrays); drives the slab-vs-column cache effect.

    Phase-level attributes:

    * ``barrier`` — the implicit end-of-worksharing barrier (``nowait``
      phases skip its cost).
    * ``locality`` — data-layout score in (0, 1] for the phase's irregular
      accesses (see :func:`repro.core.reorder.locality_score`).
    * ``footprint_bytes`` — aggregate machine-wide array footprint active
      during the phase (SAP's replicated copies); 0 = nothing unusual.
    """

    name: str
    compute: np.ndarray
    memory: np.ndarray
    critical_ops: np.ndarray
    serialized: np.ndarray
    working_set: np.ndarray
    barrier: bool = True
    locality: float = 1.0
    footprint_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.locality <= 1.0:
            raise ValueError("locality must be in (0, 1]")
        if self.footprint_bytes < 0:
            raise ValueError("footprint_bytes must be non-negative")
        n = len(np.atleast_1d(self.compute))
        for name in ("compute", "memory", "critical_ops", "serialized", "working_set"):
            object.__setattr__(
                self, name, _as_task_array(getattr(self, name), n, name)
            )

    @staticmethod
    def make(
        name: str,
        n_tasks: int,
        compute=0.0,
        memory=0.0,
        critical_ops=0.0,
        serialized=0.0,
        working_set=0.0,
        barrier: bool = True,
        locality: float = 1.0,
        footprint_bytes: float = 0.0,
    ) -> "SimPhase":
        """Build a phase from scalars or per-task arrays."""
        if n_tasks < 0:
            raise ValueError("n_tasks must be >= 0")
        return SimPhase(
            name=name,
            compute=_as_task_array(compute, n_tasks, "compute"),
            memory=_as_task_array(memory, n_tasks, "memory"),
            critical_ops=_as_task_array(critical_ops, n_tasks, "critical_ops"),
            serialized=_as_task_array(serialized, n_tasks, "serialized"),
            working_set=_as_task_array(working_set, n_tasks, "working_set"),
            barrier=barrier,
            locality=locality,
            footprint_bytes=footprint_bytes,
        )

    @property
    def n_tasks(self) -> int:
        """Number of schedulable iterations in the phase."""
        return len(self.compute)

    def total_compute(self) -> float:
        """Sum of task compute cycles."""
        return float(self.compute.sum())

    def total_memory(self) -> float:
        """Sum of task (uninflated) memory cycles."""
        return float(self.memory.sum())

    def total_critical_ops(self) -> float:
        """Sum of task critical entries."""
        return float(self.critical_ops.sum())

    def total_serialized(self) -> float:
        """Sum of task lock-held cycles."""
        return float(self.serialized.sum())


@dataclass(frozen=True)
class SimPlan:
    """A full force-evaluation plan: ordered phases + region structure.

    Attributes
    ----------
    n_parallel_regions:
        fork-join boundaries per evaluation (the paper discusses how
        1-D/2-D/3-D SDC differ in fork-join/scheduling overhead).
    serial_overheads:
        True for the serial baseline plan: the simulator charges no
        fork-join, phase, or contention costs regardless of thread count.
    """

    name: str
    phases: List[SimPhase] = field(default_factory=list)
    n_parallel_regions: int = 0
    serial_overheads: bool = False

    def __post_init__(self) -> None:
        if self.n_parallel_regions < 0:
            raise ValueError("n_parallel_regions must be >= 0")

    def total_compute(self) -> float:
        """Machine-independent total compute cycles."""
        return sum(p.total_compute() for p in self.phases)

    def total_memory(self) -> float:
        """Machine-independent total (uninflated) memory cycles."""
        return sum(p.total_memory() for p in self.phases)

    def n_tasks(self) -> int:
        """Total task count across phases."""
        return sum(p.n_tasks for p in self.phases)


def uniform_phase(
    name: str,
    n_tasks: int,
    compute_per_task: float = 0.0,
    memory_per_task: float = 0.0,
    critical_per_task: float = 0.0,
    serialized_per_task: float = 0.0,
    working_set_bytes: float = 0.0,
    barrier: bool = True,
    locality: float = 1.0,
    footprint_bytes: float = 0.0,
) -> SimPhase:
    """Convenience constructor for a phase of identical tasks.

    Used for embarrassingly parallel loops (the embedding phase, per-thread
    chunks of a flat atom loop) where per-task variation is irrelevant.
    """
    return SimPhase.make(
        name=name,
        n_tasks=n_tasks,
        compute=compute_per_task,
        memory=memory_per_task,
        critical_ops=critical_per_task,
        serialized=serialized_per_task,
        working_set=working_set_bytes,
        barrier=barrier,
        locality=locality,
        footprint_bytes=footprint_bytes,
    )
