"""Virial computation for pressure/stress reporting.

The EAM virial has the same pair structure as the force (every
contribution acts along a pair separation), so
``W = sum_pairs f_ij . r_ij`` with the Eq. 2 pair coefficient covers both
the pair and embedding terms.  The full 3x3 stress tensor version is also
provided for the deformation workloads.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import units
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    eam_density_phase,
    eam_embedding_phase,
    force_pair_coefficients,
    pair_geometry,
)


def pair_virial(
    potential: EAMPotential,
    atoms: Atoms,
    nlist: NeighborList,
) -> float:
    """Scalar virial ``W = sum_pairs f_ij . r_ij`` in eV.

    Positive for net repulsion (pushes the box outward).  Consumes half or
    full lists; the full-list double count is compensated.
    """
    return float(np.trace(virial_tensor(potential, atoms, nlist)))


def virial_tensor(
    potential: EAMPotential,
    atoms: Atoms,
    nlist: NeighborList,
) -> np.ndarray:
    """The 3x3 virial tensor ``W_ab = sum_pairs f_a r_b`` in eV."""
    i_idx, j_idx = nlist.pair_arrays()
    if len(i_idx) == 0:
        return np.zeros((3, 3))
    positions = atoms.positions
    box = atoms.box
    rho = eam_density_phase(potential, positions, box, nlist)
    _, fp = eam_embedding_phase(potential, rho)
    delta, r = pair_geometry(positions, box, i_idx, j_idx)
    coeff = force_pair_coefficients(
        potential, r, fp[i_idx], fp[j_idx], pair_ids=(i_idx, j_idx)
    )
    pair_forces = coeff[:, None] * delta
    tensor = pair_forces.T @ delta
    if not nlist.half:
        tensor = 0.5 * tensor
    return tensor


def stress_tensor_bar(
    potential: EAMPotential,
    atoms: Atoms,
    nlist: NeighborList,
) -> np.ndarray:
    """Full instantaneous stress tensor in bar (virial + kinetic parts).

    Sign convention: positive diagonal = the system pushes outward
    (compressive internal pressure).
    """
    volume = atoms.box.volume
    w = virial_tensor(potential, atoms, nlist)
    masses = atoms.mass_per_atom()
    v = atoms.velocities
    kinetic = units.MVV_TO_EV * (v * masses[:, None]).T @ v
    return (w + kinetic) / volume * units.EV_PER_A3_TO_BAR


def pressure_bar(
    potential: EAMPotential,
    atoms: Atoms,
    nlist: NeighborList,
) -> float:
    """Isotropic pressure: trace of the stress tensor over 3."""
    return float(np.trace(stress_tensor_bar(potential, atoms, nlist))) / 3.0


def finite_difference_pressure(
    potential: EAMPotential,
    atoms: Atoms,
    strain: float = 1e-5,
) -> Tuple[float, float]:
    """Reference pressure from -dE/dV (validates the virial path).

    Returns ``(pressure_bar, volume)``; builds its own neighbor lists.
    """
    from repro.md.neighbor.verlet import build_neighbor_list
    from repro.potentials.eam import compute_eam_energy

    def energy_at(scale: float) -> Tuple[float, float]:
        scaled = atoms.copy()
        scaled.box = atoms.box.scaled(scale)
        scaled.positions = scaled.box.wrap(atoms.positions * scale)
        nl = build_neighbor_list(
            scaled.positions, scaled.box, potential.cutoff, skin=0.0
        )
        return compute_eam_energy(potential, scaled, nl), scaled.box.volume

    up, v_up = energy_at(1.0 + strain)
    down, v_down = energy_at(1.0 - strain)
    p_ev_a3 = -(up - down) / (v_up - v_down)
    return p_ev_a3 * units.EV_PER_A3_TO_BAR, atoms.box.volume
