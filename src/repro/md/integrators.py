"""Time integrators.

The engine's default is velocity Verlet — the standard symplectic
integrator classical MD codes (including XMD) use.  Integrators operate on
:class:`~repro.md.atoms.Atoms` in place and know nothing about forces; the
:class:`~repro.md.simulation.Simulation` driver interleaves them with the
force strategy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import units
from repro.md.atoms import Atoms


class Integrator(ABC):
    """Two-half-step integrator interface (velocity-Verlet style).

    A step is ``first_half`` (uses current forces, advances positions) ->
    force evaluation -> ``second_half`` (finishes the velocity update).
    """

    def __init__(self, timestep: float) -> None:
        if timestep <= 0:
            raise ValueError(f"timestep must be positive, got {timestep}")
        self.timestep = timestep

    @abstractmethod
    def first_half(self, atoms: Atoms) -> None:
        """Advance velocities half a step and positions a full step."""

    @abstractmethod
    def second_half(self, atoms: Atoms) -> None:
        """Finish the velocity update with the new forces."""


class VelocityVerlet(Integrator):
    """Velocity Verlet in metal units (Å, ps, eV, amu).

    ``v(t+dt/2) = v(t) + (dt/2) F(t)/m``;
    ``x(t+dt)   = x(t) + dt v(t+dt/2)``;
    ``v(t+dt)   = v(t+dt/2) + (dt/2) F(t+dt)/m``.
    """

    def _half_kick(self, atoms: Atoms) -> None:
        inv_mass = 1.0 / atoms.mass_per_atom()
        accel = atoms.forces * (inv_mass[:, None] * units.EVA_TO_AMU_APS2)
        atoms.velocities += 0.5 * self.timestep * accel

    def first_half(self, atoms: Atoms) -> None:
        self._half_kick(atoms)
        atoms.positions += self.timestep * atoms.velocities
        atoms.wrap()

    def second_half(self, atoms: Atoms) -> None:
        self._half_kick(atoms)


class Euler(Integrator):
    """Forward Euler — intentionally crude, used in tests to show the
    driver is integrator-agnostic and in docs to contrast energy drift."""

    def first_half(self, atoms: Atoms) -> None:
        inv_mass = 1.0 / atoms.mass_per_atom()
        accel = atoms.forces * (inv_mass[:, None] * units.EVA_TO_AMU_APS2)
        atoms.positions += self.timestep * atoms.velocities
        atoms.velocities += self.timestep * accel
        atoms.wrap()

    def second_half(self, atoms: Atoms) -> None:
        # Euler does everything in the first half
        return None


def remove_drift(atoms: Atoms) -> None:
    """Zero the center-of-mass momentum (mass-weighted)."""
    masses = atoms.mass_per_atom()
    total = float(masses.sum())
    if total == 0.0 or len(atoms) == 0:
        return
    momentum = (masses[:, None] * atoms.velocities).sum(axis=0)
    atoms.velocities -= momentum[None, :] / total
