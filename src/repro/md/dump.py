"""Trajectory I/O in extended-XYZ format.

Minimal, dependency-free writer/reader so the example applications can
persist snapshots that standard visualization tools (OVITO, ASE) open.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geometry.box import Box
from repro.md.atoms import Atoms


def write_xyz(
    atoms: Atoms,
    path: Union[str, Path],
    symbols: Sequence[str] = ("Fe",),
    append: bool = False,
    comment: str = "",
) -> None:
    """Append one extended-XYZ frame to ``path``.

    The lattice is recorded in the comment line so the box round-trips.
    """
    path = Path(path)
    lx, ly, lz = atoms.box.lengths
    lattice = f'Lattice="{lx} 0 0 0 {ly} 0 0 0 {lz}"'
    header = f"{lattice} Properties=species:S:1:pos:R:3 {comment}".strip()
    lines = [str(atoms.n_atoms), header]
    type_symbols = [symbols[t] if t < len(symbols) else "X" for t in atoms.types]
    for sym, (x, y, z) in zip(type_symbols, atoms.positions):
        lines.append(f"{sym} {x:.10f} {y:.10f} {z:.10f}")
    mode = "a" if append else "w"
    with path.open(mode) as handle:
        handle.write("\n".join(lines) + "\n")


def read_xyz(
    path: Union[str, Path],
    symbols: Sequence[str] = ("Fe",),
) -> List[Tuple[np.ndarray, Optional[Box]]]:
    """Read all frames from an (extended-)XYZ file.

    Returns a list of ``(positions, box-or-None)`` tuples; the box is
    parsed from a ``Lattice="..."`` token when present (diagonal only).
    """
    lines = Path(path).read_text().splitlines()
    frames: List[Tuple[np.ndarray, Optional[Box]]] = []
    cursor = 0
    while cursor < len(lines):
        stripped = lines[cursor].strip()
        if not stripped:
            cursor += 1
            continue
        n = int(stripped)
        comment = lines[cursor + 1]
        box = _parse_lattice(comment)
        rows = lines[cursor + 2 : cursor + 2 + n]
        if len(rows) < n:
            raise ValueError(f"truncated frame at line {cursor}")
        positions = np.array(
            [[float(v) for v in row.split()[1:4]] for row in rows]
        )
        frames.append((positions, box))
        cursor += 2 + n
    return frames


def _parse_lattice(comment: str) -> Optional[Box]:
    marker = 'Lattice="'
    start = comment.find(marker)
    if start < 0:
        return None
    end = comment.find('"', start + len(marker))
    values = [float(v) for v in comment[start + len(marker) : end].split()]
    if len(values) != 9:
        return None
    return Box((values[0], values[4], values[8]))
