"""Structural analysis observables: RDF, MSD, coordination.

Used by the example applications and by tests that validate the crystal
structure the harness claims to build (bcc shell distances/multiplicities
show up directly in the radial distribution function).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.geometry.box import Box
from repro.md.neighbor.verlet import build_neighbor_list


@dataclass(frozen=True)
class RDFResult:
    """Radial distribution function g(r) on a uniform grid."""

    r: np.ndarray
    g: np.ndarray

    def peaks(self, threshold: float = 1.5) -> np.ndarray:
        """Bin centers of local maxima with g(r) above ``threshold``."""
        g = self.g
        interior = (g[1:-1] > g[:-2]) & (g[1:-1] >= g[2:]) & (
            g[1:-1] > threshold
        )
        return self.r[1:-1][interior]


def radial_distribution(
    positions: np.ndarray,
    box: Box,
    r_max: float,
    n_bins: int = 200,
) -> RDFResult:
    """g(r) of a periodic configuration via a half neighbor list.

    ``r_max`` must respect the minimum-image limit; normalization uses the
    ideal-gas shell count so a random gas gives g ~ 1.
    """
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    if r_max <= 0 or r_max >= box.max_cutoff():
        raise ValueError("r_max must be in (0, box.max_cutoff())")
    n = len(positions)
    if n < 2:
        raise ValueError("need at least two atoms")
    nlist = build_neighbor_list(
        positions, box, cutoff=r_max, skin=0.0, half=True
    )
    i_idx, j_idx = nlist.pair_arrays()
    delta = box.minimum_image(positions[i_idx] - positions[j_idx])
    distances = np.sqrt(np.sum(delta * delta, axis=1))
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts, _ = np.histogram(distances, bins=edges)
    counts = counts * 2.0  # half list stores each pair once
    centers = 0.5 * (edges[1:] + edges[:-1])
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box.volume
    ideal = density * shell_volumes * n
    g = np.where(ideal > 0, counts / ideal, 0.0)
    return RDFResult(r=centers, g=g)


def coordination_number(
    rdf: RDFResult, density: float, r_cut: float
) -> float:
    """Integrate g(r) to the running coordination number at ``r_cut``."""
    mask = rdf.r <= r_cut
    if not np.any(mask):
        return 0.0
    r = rdf.r[mask]
    integrand = 4.0 * np.pi * density * rdf.g[mask] * r * r
    return float(np.trapezoid(integrand, r))


def mean_squared_displacement(
    trajectory: Sequence[np.ndarray],
    box: Box,
) -> np.ndarray:
    """MSD(t) of a wrapped trajectory, unwrapping via minimum image.

    Assumes no atom moves more than half a box length between consecutive
    frames (standard MD sampling cadence).
    """
    frames = [np.asarray(f, dtype=np.float64) for f in trajectory]
    if len(frames) < 1:
        raise ValueError("need at least one frame")
    unwrapped = [frames[0].copy()]
    for prev_wrapped, current in zip(frames[:-1], frames[1:]):
        step = box.minimum_image(current - prev_wrapped)
        unwrapped.append(unwrapped[-1] + step)
    origin = unwrapped[0]
    return np.array(
        [float(np.mean(np.sum((f - origin) ** 2, axis=1))) for f in unwrapped]
    )


def displacement_from_lattice(
    positions: np.ndarray,
    reference: np.ndarray,
    box: Box,
) -> Tuple[float, float]:
    """(mean, max) displacement magnitude from reference sites.

    The micro-deformation example uses this to quantify how far the
    crystal has moved off its ideal lattice.
    """
    delta = box.minimum_image(np.asarray(positions) - np.asarray(reference))
    magnitudes = np.sqrt(np.sum(delta * delta, axis=1))
    if len(magnitudes) == 0:
        return 0.0, 0.0
    return float(np.mean(magnitudes)), float(np.max(magnitudes))
