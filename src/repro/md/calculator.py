"""`EAMCalculator` — a force calculator with an explicit kernel tier.

The strategies and backends are tier-agnostic: they call the kernel
entry points in :mod:`repro.potentials.eam`, which dispatch to the
process-global active tier unless handed a tier explicitly.
:class:`EAMCalculator` is the user-facing way to *choose* that tier per
calculator instead of per process: it wraps any inner
:class:`~repro.md.simulation.ForceCalculator` (or the serial kernels
when none is given) and pins the resolved tier onto the inner's
``set_kernel_tier`` hook when it has one — the concurrency-safe path,
since the tier then travels with every kernel call instead of through
the process-global active slot.  Inners without the hook still get the
scoped :func:`repro.kernels.use_tier` override, which is correct for
single-driver processes but documented as unsafe for concurrent
drivers.  Tier specs accept the variant grammar
(``"numba-parallel"``, ``"numba-fastmath"``, ...) or a
:class:`~repro.kernels.KernelTierConfig`.
"""

from __future__ import annotations

from typing import Optional

from repro import kernels
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.potentials.base import EAMPotential
from repro.potentials.eam import EAMComputation, compute_eam_forces_serial


class EAMCalculator:
    """Tier-selecting wrapper around any force calculator.

    Parameters
    ----------
    calculator:
        the inner :class:`~repro.md.simulation.ForceCalculator` (a
        strategy, a process engine, ...); None means the serial kernels.
    kernel_tier:
        a tier variant spec (``"numpy"``, ``"numba"``,
        ``"numba-parallel"``, ``"numba-fastmath"``, ``"auto"``, ...), a
        :class:`~repro.kernels.KernelTierConfig`, a live
        :class:`~repro.kernels.KernelTier`, or None for the process
        default (``REPRO_KERNEL_TIER``, else numpy).  Resolved eagerly,
        so an unknown spec raises here and an unavailable numba tier
        emits its single fallback warning at construction, not mid-run.
    """

    def __init__(
        self,
        calculator=None,
        kernel_tier: kernels.TierSpec = None,
    ) -> None:
        self._inner = calculator
        self._tier: Optional[kernels.KernelTier] = (
            kernels.get(kernel_tier) if kernel_tier is not None else None
        )
        self._profiler = None
        # pin the tier on the inner when it supports explicit selection —
        # the tier then rides along with every kernel call, so concurrent
        # calculators never race on the process-global active tier
        self._inner_pinned = False
        if self._tier is not None and self._inner is not None:
            hook = getattr(self._inner, "set_kernel_tier", None)
            if hook is not None:
                hook(self._tier)
                self._inner_pinned = True

    @property
    def kernel_tier(self) -> str:
        """Resolved tier name this calculator computes with."""
        return (self._tier or kernels.active_tier()).name

    @property
    def name(self) -> str:
        inner = (
            getattr(self._inner, "name", type(self._inner).__name__)
            if self._inner is not None
            else "serial"
        )
        return f"{inner}[{self.kernel_tier}]"

    def compute(
        self, potential: EAMPotential, atoms: Atoms, nlist: NeighborList
    ) -> EAMComputation:
        """Run the 3-phase evaluation under this calculator's tier."""
        if self._inner is None:
            return compute_eam_forces_serial(
                potential, atoms, nlist, profiler=self._profiler, tier=self._tier
            )
        if self._inner_pinned or self._tier is None:
            return self._inner.compute(potential, atoms, nlist)
        # hook-less inner: fall back to the scoped global override (fine
        # when this is the only driver computing in the process)
        with kernels.use_tier(self._tier):
            return self._inner.compute(potential, atoms, nlist)

    # --- observability / lifecycle forwarding -------------------------------

    def health_snapshot(self) -> dict:
        """Engine/tier state for the health plane.

        Wraps the inner calculator's ``health_snapshot`` when it has one
        (the process engine reports pool/arena lifecycle state); plain
        inners still report the resolved tier and calculator name.
        """
        snapshot = {
            "engine": self.name,
            "kernel_tier": self.kernel_tier,
            "tier_pinned": self._tier is not None,
        }
        hook = getattr(self._inner, "health_snapshot", None)
        if callable(hook):
            snapshot["inner"] = hook()
        return snapshot

    def attach_profiler(self, profiler) -> None:
        self._profiler = profiler
        if profiler is not None:
            profiler.kernel_tier = self.kernel_tier
        hook = getattr(self._inner, "attach_profiler", None)
        if hook is not None:
            hook(profiler)

    def detach_profiler(self) -> None:
        self._profiler = None
        hook = getattr(self._inner, "detach_profiler", None)
        if hook is not None:
            hook()

    def attach_tracer(self, tracer) -> None:
        hook = getattr(self._inner, "attach_tracer", None)
        if hook is not None:
            hook(tracer)

    def detach_tracer(self) -> None:
        hook = getattr(self._inner, "detach_tracer", None)
        if hook is not None:
            hook()

    def close(self) -> None:
        hook = getattr(self._inner, "close", None)
        if hook is not None:
            hook()

    def __enter__(self) -> "EAMCalculator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
