"""Thermostats for temperature control.

The paper's micro-deformation workloads start from a lattice with assigned
initial energy; the example applications use these thermostats to
equilibrate before measurement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import units
from repro.md.atoms import Atoms
from repro.md.observables import kinetic_energy, temperature


class Thermostat(ABC):
    """Velocity-modifying temperature controller, applied once per step."""

    def __init__(self, target_temperature: float) -> None:
        if target_temperature < 0:
            raise ValueError("target temperature must be >= 0")
        self.target_temperature = target_temperature

    @abstractmethod
    def apply(self, atoms: Atoms, timestep: float) -> None:
        """Rescale/adjust velocities toward the target temperature."""


class VelocityRescaleThermostat(Thermostat):
    """Hard rescale: sets the instantaneous temperature to the target.

    Simple and aggressive; fine for initial equilibration.
    """

    def apply(self, atoms: Atoms, timestep: float) -> None:
        current = temperature(atoms)
        if current <= 0.0:
            return
        factor = np.sqrt(self.target_temperature / current)
        atoms.velocities *= factor


class BerendsenThermostat(Thermostat):
    """Berendsen weak-coupling thermostat.

    Velocities are scaled by ``sqrt(1 + (dt/tau)(T0/T - 1))`` each step,
    relaxing the temperature exponentially with time constant ``tau`` (ps).
    """

    def __init__(self, target_temperature: float, tau: float = 0.1) -> None:
        super().__init__(target_temperature)
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau

    def apply(self, atoms: Atoms, timestep: float) -> None:
        current = temperature(atoms)
        if current <= 0.0:
            return
        arg = 1.0 + (timestep / self.tau) * (
            self.target_temperature / current - 1.0
        )
        atoms.velocities *= np.sqrt(max(arg, 0.0))
