"""Verlet neighbor lists in the paper's CSR layout.

A :class:`NeighborList` stores, for every atom ``i``, the indices of atoms
within ``cutoff + skin``.  The *half* variant stores each pair once
(``i < j``) — this is what enables the Section II.D optimizations (reuse of
``phi(r_ij)`` for both atoms, Newton's-third-law force accumulation) and
what creates the irregular write conflicts the paper's SDC method solves.
The *full* variant stores both directions and is what the Redundant
Computation (RC) baseline strategy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.geometry.box import Box
from repro.md.neighbor.cells import CellList, build_cell_list, concat_ranges
from repro.utils.arrays import CSR


@dataclass(frozen=True)
class NeighborList:
    """CSR neighbor list bound to the positions it was built from.

    Attributes
    ----------
    csr:
        per-atom neighbor rows; ``csr.offsets`` is the paper's
        ``neighindex`` (with ``neighlen = diff(offsets)``), ``csr.values``
        the paper's ``neighlist``.
    cutoff:
        interaction cutoff r_c in Å.
    skin:
        Verlet skin in Å; the list contains all pairs within
        ``cutoff + skin`` and remains valid until some atom moves more than
        ``skin / 2``.
    half:
        if True each pair appears once with ``i < j``; if False both
        directions are stored.
    reference_positions:
        wrapped positions at build time (for the rebuild criterion).
    """

    csr: CSR
    cutoff: float
    skin: float
    half: bool
    reference_positions: np.ndarray
    box: Box

    @property
    def n_atoms(self) -> int:
        """Number of atoms the list covers."""
        return self.csr.n_rows

    @property
    def n_pairs(self) -> int:
        """Number of stored (directed) entries."""
        return self.csr.n_values

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(i_idx, j_idx)`` arrays aligned with the CSR payload.

        ``i_idx[k]`` is the row owning slot ``k``; this is the layout the
        vectorized kernels iterate over.
        """
        return self.csr.row_of_value(), self.csr.values

    def neighbors_of(self, i: int) -> np.ndarray:
        """Neighbor indices of atom ``i`` (view)."""
        return self.csr.row(i)

    def max_displacement(self, positions: np.ndarray) -> float:
        """Largest minimum-image displacement since the list was built."""
        delta = self.box.minimum_image(
            self.box.wrap(positions) - self.reference_positions
        )
        if len(delta) == 0:
            return 0.0
        return float(np.sqrt(np.max(np.sum(delta * delta, axis=1))))

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """Standard Verlet criterion: any atom moved more than ``skin/2``."""
        return self.max_displacement(positions) > self.skin / 2.0


def _candidate_pairs(cells: CellList) -> Tuple[np.ndarray, np.ndarray]:
    """All candidate atom pairs from the deduplicated 27-cell stencil.

    Returns directed candidates (both (i, j) and (j, i) appear; self pairs
    are kept and filtered by the caller together with the distance cut).
    """
    src_cells, dst_cells = cells.neighbor_cell_pairs()
    counts = cells.counts()
    # for every (cell, neighbor-cell) pair: block of counts[src] * counts[dst]
    block = counts[src_cells] * counts[dst_cells]
    keep = block > 0
    src_cells, dst_cells = src_cells[keep], dst_cells[keep]
    # i side: atoms of src cell, each repeated by occupancy of dst cell
    i_ranges = concat_ranges(cells.starts[src_cells], counts[src_cells])
    i_atoms = cells.order[i_ranges]
    i_rep = np.repeat(counts[dst_cells], counts[src_cells])
    i_idx = np.repeat(i_atoms, i_rep)
    # j side: for each atom of the src cell, the whole dst cell
    j_starts = np.repeat(cells.starts[dst_cells], counts[src_cells])
    j_ranges = concat_ranges(j_starts, i_rep)
    j_idx = cells.order[j_ranges]
    return i_idx, j_idx


def _pairs_to_csr(
    i_idx: np.ndarray, j_idx: np.ndarray, n_atoms: int
) -> CSR:
    """Sort directed pairs by (i, j) and pack them into CSR rows."""
    if len(i_idx):
        order = np.lexsort((j_idx, i_idx))
        i_idx = i_idx[order]
        j_idx = j_idx[order]
    lengths = np.bincount(i_idx, minlength=n_atoms)
    offsets = np.zeros(n_atoms + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return CSR(offsets=offsets, values=j_idx.astype(np.int64, copy=False))


def build_neighbor_list(
    positions: np.ndarray,
    box: Box,
    cutoff: float,
    skin: float = 0.3,
    half: bool = True,
    cells: Optional[CellList] = None,
) -> NeighborList:
    """Build a Verlet neighbor list with link cells.

    Parameters
    ----------
    positions:
        ``(n, 3)`` coordinates (wrapped internally).
    cutoff:
        interaction cutoff r_c.
    skin:
        extra shell so the list survives several timesteps.
    half:
        store each pair once (``i < j``) or both directions.
    cells:
        an existing :class:`CellList` built with cell size >=
        ``cutoff + skin`` to reuse; built fresh when omitted.
    """
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if skin < 0:
        raise ValueError(f"skin must be >= 0, got {skin}")
    reach = cutoff + skin
    if reach >= box.max_cutoff():
        raise ValueError(
            f"cutoff+skin={reach:.3f} exceeds the minimum-image limit "
            f"{box.max_cutoff():.3f} for this box"
        )
    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    n_atoms = len(positions)
    if cells is None:
        cells = build_cell_list(positions, box, reach)
    i_idx, j_idx = _candidate_pairs(cells)
    if len(i_idx):
        mask = i_idx != j_idx
        if half:
            mask &= i_idx < j_idx
        i_idx, j_idx = i_idx[mask], j_idx[mask]
        delta = box.minimum_image(positions[i_idx] - positions[j_idx])
        r2 = np.sum(delta * delta, axis=1)
        keep = r2 <= reach * reach
        i_idx, j_idx = i_idx[keep], j_idx[keep]
    csr = _pairs_to_csr(i_idx, j_idx, n_atoms)
    return NeighborList(
        csr=csr,
        cutoff=cutoff,
        skin=skin,
        half=half,
        reference_positions=positions.copy(),
        box=box,
    )


def build_reordered_neighbor_list(
    positions: np.ndarray,
    box: Box,
    cutoff: float,
    skin: float = 0.3,
    half: bool = True,
) -> Tuple[NeighborList, np.ndarray, np.ndarray]:
    """Build the Section II.D cache-optimized layout: sorted atoms + CSR list.

    Bins ``positions`` into link cells, renumbers atoms in cell order
    (the :attr:`CellList.order` permutation), and builds the neighbor
    list *in the new numbering* — so both the atom arrays and the
    per-row ``j`` streams walk memory almost sequentially.  Rows come out
    CSR-sorted (ascending ``j`` within each row) by construction.

    Returns ``(nlist, perm, inverse)``:

    * ``nlist`` — neighbor list over the reordered atoms;
    * ``perm`` — apply with :meth:`repro.md.atoms.Atoms.reorder` (new
      index ``k`` was old ``perm[k]``);
    * ``inverse`` — maps old indices to new (``inverse[perm[k]] == k``),
      the output map: ``result_old = result_new[inverse]``.
    """
    from repro.utils.arrays import invert_permutation

    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    reach = cutoff + skin
    cells = build_cell_list(positions, box, reach)
    perm = cells.order.copy()
    inverse = invert_permutation(perm)
    nlist = build_neighbor_list(
        positions[perm], box, cutoff, skin=skin, half=half
    )
    return nlist, perm, inverse


def brute_force_neighbor_list(
    positions: np.ndarray,
    box: Box,
    cutoff: float,
    skin: float = 0.0,
    half: bool = True,
) -> NeighborList:
    """O(N^2) reference builder (tests only; exact same semantics)."""
    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    n = len(positions)
    reach = cutoff + skin
    if reach >= box.max_cutoff():
        raise ValueError("cutoff+skin exceeds minimum-image limit")
    delta = box.minimum_image(positions[:, None, :] - positions[None, :, :])
    r2 = np.sum(delta * delta, axis=-1)
    mask = r2 <= reach * reach
    np.fill_diagonal(mask, False)
    if half:
        mask = np.triu(mask, k=1)
    i_idx, j_idx = np.nonzero(mask)
    csr = _pairs_to_csr(i_idx.astype(np.int64), j_idx.astype(np.int64), n)
    return NeighborList(
        csr=csr,
        cutoff=cutoff,
        skin=skin,
        half=half,
        reference_positions=positions.copy(),
        box=box,
    )


def full_from_half(nlist: NeighborList) -> NeighborList:
    """Expand a half list into a full list (what the RC strategy consumes).

    This materializes the doubled neighbor storage the paper attributes to
    the redundant-computation approach ("neighbor list requires more memory
    space").
    """
    if not nlist.half:
        return nlist
    i_idx, j_idx = nlist.pair_arrays()
    all_i = np.concatenate([i_idx, j_idx])
    all_j = np.concatenate([j_idx, i_idx])
    csr = _pairs_to_csr(all_i, all_j, nlist.n_atoms)
    return NeighborList(
        csr=csr,
        cutoff=nlist.cutoff,
        skin=nlist.skin,
        half=False,
        reference_positions=nlist.reference_positions,
        box=nlist.box,
    )


def half_from_full(nlist: NeighborList) -> NeighborList:
    """Reduce a full list to a half (``i < j``) list."""
    if nlist.half:
        return nlist
    i_idx, j_idx = nlist.pair_arrays()
    keep = i_idx < j_idx
    csr = _pairs_to_csr(i_idx[keep], j_idx[keep], nlist.n_atoms)
    return NeighborList(
        csr=csr,
        cutoff=nlist.cutoff,
        skin=nlist.skin,
        half=True,
        reference_positions=nlist.reference_positions,
        box=nlist.box,
    )
