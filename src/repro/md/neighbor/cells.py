"""Cell (link-cell) binning of atoms.

Binning the box into cells no smaller than the interaction cutoff reduces
neighbor search from O(N^2) to O(N): every neighbor of an atom lives in the
atom's own cell or one of the 26 surrounding cells.  The cell list is also
the geometric backbone of the paper's contribution — SDC subdomains are
unions of cells, and the data-reordering optimization sorts atoms by cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.box import Box

#: relative tolerance for snapping ``box.length / min_cell_size`` to an
#: integer before flooring (guards against losing a cell to FP noise)
CELL_COUNT_RTOL = 1e-9


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+l) for s, l in zip(starts, lengths)]`` fast.

    The workhorse of vectorized pair generation: builds, in one pass and
    without a Python loop, the flat index array that visits every element of
    every requested range.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    if np.any(lengths < 0):
        raise ValueError("lengths must be non-negative")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # exclusive prefix sum of lengths gives where each range begins in output
    offsets = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - offsets, lengths)
    return out


@dataclass(frozen=True)
class CellList:
    """Atoms binned into a regular grid of cells covering the box.

    Attributes
    ----------
    n_cells:
        cells per axis, ``(ncx, ncy, ncz)``, each >= 1.
    cell_size:
        actual edge lengths of one cell (``box.lengths / n_cells``).
    cell_of_atom:
        flat cell id of each atom.
    order:
        atom indices sorted by cell id (stable) — atoms of cell ``c`` are
        ``order[starts[c]:starts[c+1]]``.
    starts:
        CSR offsets into ``order``, length ``n_total_cells + 1``.
    """

    box: Box
    n_cells: tuple[int, int, int]
    cell_size: np.ndarray
    cell_of_atom: np.ndarray
    order: np.ndarray
    starts: np.ndarray

    @property
    def n_total_cells(self) -> int:
        """Total number of cells in the grid."""
        ncx, ncy, ncz = self.n_cells
        return ncx * ncy * ncz

    @property
    def n_atoms(self) -> int:
        """Number of binned atoms."""
        return len(self.cell_of_atom)

    def counts(self) -> np.ndarray:
        """Occupancy of each cell."""
        return np.diff(self.starts)

    def atoms_in_cell(self, cell_id: int) -> np.ndarray:
        """Atom indices contained in flat cell ``cell_id``."""
        return self.order[self.starts[cell_id] : self.starts[cell_id + 1]]

    def cell_coords(self, cell_ids: np.ndarray) -> np.ndarray:
        """Convert flat cell ids to integer ``(cx, cy, cz)`` coordinates."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        _, ncy, ncz = self.n_cells
        cz = cell_ids % ncz
        cy = (cell_ids // ncz) % ncy
        cx = cell_ids // (ncz * ncy)
        return np.stack([cx, cy, cz], axis=-1)

    def flat_ids(self, coords: np.ndarray) -> np.ndarray:
        """Convert integer cell coordinates to flat ids (no wrapping)."""
        coords = np.asarray(coords, dtype=np.int64)
        _, ncy, ncz = self.n_cells
        return (coords[..., 0] * ncy + coords[..., 1]) * ncz + coords[..., 2]

    def neighbor_cell_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All distinct (cell, neighbor-cell) pairs of the 27-stencil.

        Offsets that wrap onto the same cell (small periodic grids) are
        deduplicated, so each geometric cell pair is emitted exactly once.
        Non-periodic axes clip out-of-range neighbors instead of wrapping.
        """
        ncx, ncy, ncz = self.n_cells
        nc = np.array([ncx, ncy, ncz], dtype=np.int64)
        all_ids = np.arange(self.n_total_cells, dtype=np.int64)
        coords = self.cell_coords(all_ids)  # (C, 3)
        offs = np.stack(
            np.meshgrid([-1, 0, 1], [-1, 0, 1], [-1, 0, 1], indexing="ij"), axis=-1
        ).reshape(-1, 3)
        src_all = []
        dst_all = []
        for off in offs:
            target = coords + off
            valid = np.ones(len(coords), dtype=bool)
            for axis in range(3):
                if self.box.periodic[axis]:
                    target[:, axis] %= nc[axis]
                else:
                    valid &= (target[:, axis] >= 0) & (target[:, axis] < nc[axis])
            src_all.append(all_ids[valid])
            dst_all.append(self.flat_ids(target[valid]))
        src = np.concatenate(src_all)
        dst = np.concatenate(dst_all)
        # dedup (src, dst) pairs that coincide after wrapping
        key = src * self.n_total_cells + dst
        _, unique_idx = np.unique(key, return_index=True)
        return src[unique_idx], dst[unique_idx]


def build_cell_list(
    positions: np.ndarray, box: Box, min_cell_size: float
) -> CellList:
    """Bin wrapped ``positions`` into cells of edge >= ``min_cell_size``.

    Along any axis shorter than ``min_cell_size`` a single cell is used
    (the 27-stencil then degenerates gracefully thanks to pair dedup).
    """
    if min_cell_size <= 0:
        raise ValueError(f"min_cell_size must be positive, got {min_cell_size}")
    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    # snap the cells-per-axis ratio to the nearest integer when it lands
    # within a relative tolerance below it: a box of length 3*h - epsilon
    # must still get 3 cells, not lose one to FP noise in the division
    # (the lost cell would shrink the grid and inflate candidate pairs)
    ratio = box.lengths / min_cell_size
    nearest = np.rint(ratio)
    snapped = np.where(
        np.abs(ratio - nearest) <= CELL_COUNT_RTOL * np.maximum(ratio, 1.0),
        nearest,
        np.floor(ratio),
    )
    n_cells = np.maximum(1, snapped.astype(np.int64))
    cell_size = box.lengths / n_cells
    # integer cell coordinates; clip guards against pos == L after rounding
    coords = np.floor(positions / cell_size).astype(np.int64)
    coords = np.minimum(coords, n_cells - 1)
    coords = np.maximum(coords, 0)
    ncx, ncy, ncz = (int(v) for v in n_cells)
    cell_of_atom = (coords[:, 0] * ncy + coords[:, 1]) * ncz + coords[:, 2]
    order = np.argsort(cell_of_atom, kind="stable")
    counts = np.bincount(cell_of_atom, minlength=ncx * ncy * ncz)
    starts = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return CellList(
        box=box,
        n_cells=(ncx, ncy, ncz),
        cell_size=cell_size,
        cell_of_atom=cell_of_atom,
        order=np.ascontiguousarray(order, dtype=np.int64),
        starts=starts,
    )
