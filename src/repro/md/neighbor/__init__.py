"""Neighbor-list construction: O(N) cell binning + Verlet lists.

The lists use the paper's exact CSR layout (``neighindex``/``neighlen``/
``neighlist``) via :class:`repro.utils.arrays.CSR`.
"""

from repro.md.neighbor.cells import CellList, build_cell_list, concat_ranges
from repro.md.neighbor.verlet import (
    NeighborList,
    build_neighbor_list,
    brute_force_neighbor_list,
    full_from_half,
    half_from_full,
)

__all__ = [
    "CellList",
    "build_cell_list",
    "concat_ranges",
    "NeighborList",
    "build_neighbor_list",
    "brute_force_neighbor_list",
    "full_from_half",
    "half_from_full",
]
