"""The MD driver: time stepping, neighbor-list management, measurement.

This is the piece that reproduces the paper's experimental procedure: run
N timesteps and accumulate, separately, the time spent in the electron
density and force calculations (the only two parts the paper times) —
"All of execution times of our experiments are the running times of the
calculations of the electron densities and forces".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from repro.md.atoms import Atoms
from repro.md.integrators import Integrator, VelocityVerlet
from repro.md.neighbor.verlet import NeighborList, build_neighbor_list
from repro.md.observables import kinetic_energy, temperature
from repro.md.thermostats import Thermostat
from repro.potentials.base import EAMPotential
from repro.potentials.eam import EAMComputation, compute_eam_forces_serial
from repro.utils.timers import Stopwatch


class ForceCalculator(Protocol):
    """Anything that can run the 3-phase EAM computation.

    Implemented by every strategy in :mod:`repro.core.strategies` and by
    the plain serial kernel.
    """

    def compute(
        self, potential: EAMPotential, atoms: Atoms, nlist: NeighborList
    ) -> EAMComputation:
        """Evaluate densities/embedding/forces; update ``atoms`` in place."""
        ...


class SerialCalculator:
    """Directly calls the serial reference kernels."""

    def compute(
        self, potential: EAMPotential, atoms: Atoms, nlist: NeighborList
    ) -> EAMComputation:
        return compute_eam_forces_serial(potential, atoms, nlist)

    def health_snapshot(self) -> dict:
        from repro import kernels

        return {
            "engine": "serial",
            "kernel_tier": kernels.active_tier().name,
        }


@dataclass
class StepRecord:
    """Per-sample observables emitted by the driver."""

    step: int
    potential_energy: float
    kinetic_energy: float
    temperature: float

    @property
    def total_energy(self) -> float:
        """Conserved quantity in NVE."""
        return self.potential_energy + self.kinetic_energy


@dataclass
class SimulationReport:
    """What a :meth:`Simulation.run` call produced."""

    records: List[StepRecord] = field(default_factory=list)
    n_steps: int = 0
    n_neighbor_rebuilds: int = 0
    force_seconds: float = 0.0

    def energies(self) -> np.ndarray:
        """Total-energy series as an array (energy-conservation tests)."""
        return np.array([r.total_energy for r in self.records])


class Simulation:
    """Owns atoms + potential + integrator + force strategy + neighbor list.

    Parameters
    ----------
    skin:
        Verlet skin; the list is rebuilt when any atom has moved more
        than ``skin / 2`` since the last build (and on the first step).
    rebuild_every:
        optional hard cadence; when set, the list is also rebuilt every
        that many steps regardless of displacement (the paper notes "the
        neighbor list usually doesn't be updated in every time-step").
    tracer:
        optional :class:`~repro.obs.tracer.Tracer`; when set, the driver
        records ``md-step`` / ``forces`` / ``neighbor-rebuild`` spans so
        the per-step structure shows up on the execution timeline.
    run_log:
        optional :class:`~repro.obs.runlog.RunLog`; when set, the driver
        appends ``observables`` records at every sample and an ``event``
        record per neighbor rebuild.
    health:
        optional :class:`~repro.obs.health.HealthMonitor`; when set, the
        driver runs the physics invariant checks (energy drift, momentum,
        force-sum residual) after every force evaluation of the stepping
        loop, and threshold crossings land in the flight recorder and the
        run log.  The monitor is bound to this driver's calculator so
        :meth:`~repro.obs.health.HealthMonitor.snapshot` covers the
        engine too.
    """

    def __init__(
        self,
        atoms: Atoms,
        potential: EAMPotential,
        calculator: Optional[ForceCalculator] = None,
        integrator: Optional[Integrator] = None,
        thermostat: Optional[Thermostat] = None,
        skin: float = 0.3,
        rebuild_every: Optional[int] = None,
        tracer=None,
        run_log=None,
        health=None,
    ) -> None:
        if rebuild_every is not None and rebuild_every <= 0:
            raise ValueError("rebuild_every must be positive when given")
        self.atoms = atoms
        self.potential = potential
        self.calculator: ForceCalculator = calculator or SerialCalculator()
        self.integrator = integrator or VelocityVerlet(timestep=1.0e-3)
        self.thermostat = thermostat
        self.skin = skin
        self.rebuild_every = rebuild_every
        self.tracer = tracer
        self.run_log = run_log
        self.health = health
        if health is not None and health.calculator is None:
            health.attach_calculator(self.calculator)
        self.nlist: Optional[NeighborList] = None
        self.stopwatch = Stopwatch()
        self._last_computation: Optional[EAMComputation] = None
        self._steps_since_rebuild = 0

    def _span(self, name: str, **args):
        """A tracer span context, or a no-op when untraced."""
        if self.tracer is None:
            from repro.utils.profiler import NULL_PHASE

            return NULL_PHASE
        return self.tracer.span(name, category="md", **args)

    # --- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the calculator's execution resources (idempotent).

        Persistent calculators (the process engine, strategies on a
        thread pool) hold worker pools and shared-memory arenas across
        steps; the driver owns the calculator for the run, so it also
        owns the teardown.  Calculators without a ``close`` are left
        untouched.
        """
        release = getattr(self.calculator, "close", None)
        if callable(release):
            release()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # --- neighbor management ---------------------------------------------------

    def ensure_neighbor_list(self) -> NeighborList:
        """Build or refresh the neighbor list when the Verlet criterion fires."""
        must_build = self.nlist is None or self.nlist.needs_rebuild(
            self.atoms.positions
        )
        if (
            not must_build
            and self.rebuild_every is not None
            and self._steps_since_rebuild >= self.rebuild_every
        ):
            must_build = True
        if must_build:
            with self.stopwatch.section("neighbor"):
                with self._span("neighbor-rebuild"):
                    self.nlist = build_neighbor_list(
                        self.atoms.positions,
                        self.atoms.box,
                        cutoff=self.potential.cutoff,
                        skin=self.skin,
                        half=True,
                    )
            self._steps_since_rebuild = 0
            if self.run_log is not None:
                self.run_log.log(
                    "event",
                    event="neighbor-rebuild",
                    n_pairs=self.nlist.n_pairs,
                )
            try:
                from repro.obs.recorder import record

                record(
                    "scheduler",
                    "neighbor-rebuild",
                    n_pairs=self.nlist.n_pairs,
                    n_atoms=self.atoms.n_atoms,
                )
            except Exception:  # pragma: no cover - telemetry stays optional
                pass
            # distributed engines re-home atoms at every rebuild (atom
            # migration); plain strategies simply don't expose the hook
            rebuild_hook = getattr(self.calculator, "on_neighbor_rebuild", None)
            if rebuild_hook is not None:
                rebuild_hook(self.atoms, self.nlist)
        assert self.nlist is not None
        return self.nlist

    # --- force evaluation ---------------------------------------------------------

    def compute_forces(self) -> EAMComputation:
        """One full 3-phase EAM evaluation through the configured strategy."""
        nlist = self.ensure_neighbor_list()
        with self.stopwatch.section("forces"):
            with self._span("forces"):
                result = self.calculator.compute(
                    self.potential, self.atoms, nlist
                )
        self._last_computation = result
        return result

    @property
    def last_computation(self) -> Optional[EAMComputation]:
        """Result of the most recent force evaluation."""
        return self._last_computation

    # --- stepping -----------------------------------------------------------------

    def run(
        self,
        n_steps: int,
        sample_every: int = 10,
    ) -> SimulationReport:
        """Integrate ``n_steps`` of dynamics.

        Forces are evaluated once before the loop if no evaluation has
        happened yet (velocity Verlet needs F(t=0)).
        """
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        report = SimulationReport()
        rebuilds_before = self.stopwatch.count("neighbor")
        if self._last_computation is None:
            self.compute_forces()
        assert self._last_computation is not None
        if self.run_log is not None:
            self.run_log.log(
                "event",
                event="run-begin",
                n_steps=n_steps,
                n_atoms=self.atoms.n_atoms,
                calculator=getattr(
                    self.calculator, "name", type(self.calculator).__name__
                ),
            )
        for step in range(n_steps):
            with self._span("md-step", step=step):
                self.integrator.first_half(self.atoms)
                self._steps_since_rebuild += 1
                result = self.compute_forces()
                self.integrator.second_half(self.atoms)
                if self.thermostat is not None:
                    self.thermostat.apply(
                        self.atoms, self.integrator.timestep
                    )
                if self.health is not None:
                    self.health.observe_step(
                        step,
                        self.atoms,
                        result.potential_energy,
                        run_log=self.run_log,
                    )
            if step % sample_every == 0 or step == n_steps - 1:
                record = StepRecord(
                    step=step,
                    potential_energy=result.potential_energy,
                    kinetic_energy=kinetic_energy(self.atoms),
                    temperature=temperature(self.atoms),
                )
                report.records.append(record)
                if self.run_log is not None:
                    self.run_log.log(
                        "observables",
                        step=record.step,
                        potential_energy=record.potential_energy,
                        kinetic_energy=record.kinetic_energy,
                        temperature=record.temperature,
                        total_energy=record.total_energy,
                    )
        report.n_steps = n_steps
        report.n_neighbor_rebuilds = (
            self.stopwatch.count("neighbor") - rebuilds_before
        )
        report.force_seconds = self.stopwatch.total("forces")
        if self.run_log is not None:
            self.run_log.log(
                "event",
                event="run-end",
                n_steps=report.n_steps,
                n_neighbor_rebuilds=report.n_neighbor_rebuilds,
                force_seconds=report.force_seconds,
            )
        return report
