"""Physical observables computed from the atom state."""

from __future__ import annotations

import numpy as np

from repro import units
from repro.md.atoms import Atoms


def kinetic_energy(atoms: Atoms) -> float:
    """Total kinetic energy in eV."""
    masses = atoms.mass_per_atom()
    v2 = np.sum(atoms.velocities * atoms.velocities, axis=1)
    return 0.5 * units.MVV_TO_EV * float(np.sum(masses * v2))


def temperature(atoms: Atoms) -> float:
    """Instantaneous kinetic temperature in K (3N degrees of freedom)."""
    if len(atoms) == 0:
        return 0.0
    return units.kinetic_energy_to_temperature(kinetic_energy(atoms), len(atoms))


def total_momentum(atoms: Atoms) -> np.ndarray:
    """Total momentum vector (amu * Å/ps)."""
    masses = atoms.mass_per_atom()
    return (masses[:, None] * atoms.velocities).sum(axis=0)


def virial_pressure(
    atoms: Atoms,
    pair_virial: float,
) -> float:
    """Isotropic virial pressure in bar.

    ``P = (2 K / 3 + W / 3) / V`` with ``W`` the pair virial
    ``sum_pairs f_ij . r_ij`` supplied by the force computation.
    """
    volume = atoms.box.volume
    kinetic = kinetic_energy(atoms)
    p_ev_a3 = (2.0 * kinetic / 3.0 + pair_virial / 3.0) / volume
    return p_ev_a3 * units.EV_PER_A3_TO_BAR


def force_max_norm(atoms: Atoms) -> float:
    """Largest per-atom force magnitude (eV/Å) — a relaxation criterion."""
    if len(atoms) == 0:
        return 0.0
    return float(np.sqrt(np.max(np.sum(atoms.forces**2, axis=1))))
