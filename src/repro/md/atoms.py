"""Structure-of-arrays atom state.

The engine keeps every per-atom quantity in its own contiguous NumPy array
(positions, velocities, forces, electron densities, ...), mirroring the flat
C arrays of the paper's kernels.  SoA layout is what makes both the
vectorized kernels and the data-reordering optimization (Section II.D of
the paper) expressible: a reorder is a single fancy-index pass per array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import units
from repro.geometry.box import Box
from repro.utils.validation import check_finite, check_shape


@dataclass
class Atoms:
    """Mutable SoA container for one atomic configuration.

    Attributes
    ----------
    positions:
        ``(n, 3)`` Å, always kept wrapped inside ``box``.
    velocities:
        ``(n, 3)`` Å/ps.
    forces:
        ``(n, 3)`` eV/Å; owned by the force strategies.
    rho:
        ``(n,)`` host electron density at each atom (EAM Eq. 1).
    fp:
        ``(n,)`` derivative of the embedding function F'(rho_i); cached
        between the density and force phases of the EAM computation.
    types:
        ``(n,)`` small-int species indices (0-based).
    ids:
        ``(n,)`` permanent atom identifiers, stable across reorders.
    masses:
        per-type masses in amu, indexed by ``types``.
    """

    box: Box
    positions: np.ndarray
    velocities: np.ndarray = field(default=None)  # type: ignore[assignment]
    forces: np.ndarray = field(default=None)  # type: ignore[assignment]
    rho: np.ndarray = field(default=None)  # type: ignore[assignment]
    fp: np.ndarray = field(default=None)  # type: ignore[assignment]
    types: np.ndarray = field(default=None)  # type: ignore[assignment]
    ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    masses: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(
                f"positions must be (n, 3), got shape {self.positions.shape}"
            )
        n = len(self.positions)
        check_finite(self.positions, "positions")
        self.positions = self.box.wrap(self.positions)
        if self.velocities is None:
            self.velocities = np.zeros((n, 3))
        else:
            self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
            check_shape(self.velocities, (n, 3), "velocities")
        if self.forces is None:
            self.forces = np.zeros((n, 3))
        else:
            self.forces = np.ascontiguousarray(self.forces, dtype=np.float64)
            check_shape(self.forces, (n, 3), "forces")
        if self.rho is None:
            self.rho = np.zeros(n)
        else:
            self.rho = np.ascontiguousarray(self.rho, dtype=np.float64)
            check_shape(self.rho, (n,), "rho")
        if self.fp is None:
            self.fp = np.zeros(n)
        else:
            self.fp = np.ascontiguousarray(self.fp, dtype=np.float64)
            check_shape(self.fp, (n,), "fp")
        if self.types is None:
            self.types = np.zeros(n, dtype=np.int32)
        else:
            self.types = np.ascontiguousarray(self.types, dtype=np.int32)
            check_shape(self.types, (n,), "types")
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        else:
            self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
            check_shape(self.ids, (n,), "ids")
        if self.masses is None:
            self.masses = np.array([units.FE_MASS_AMU])
        else:
            self.masses = np.ascontiguousarray(self.masses, dtype=np.float64)
        if self.types.size and self.types.max() >= len(self.masses):
            raise ValueError(
                f"types reference {self.types.max() + 1} species but only "
                f"{len(self.masses)} masses given"
            )

    # --- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return len(self.positions)

    def mass_per_atom(self) -> np.ndarray:
        """Per-atom masses (amu) expanded from per-type masses."""
        return self.masses[self.types]

    # --- mutation helpers -------------------------------------------------------

    def wrap(self) -> None:
        """Re-wrap positions into the primary cell (after integration)."""
        self.positions = self.box.wrap(self.positions)

    def zero_forces(self) -> None:
        """Reset the force accumulator (start of a force evaluation)."""
        self.forces[:] = 0.0

    def zero_rho(self) -> None:
        """Reset the electron-density accumulator."""
        self.rho[:] = 0.0

    def reorder(self, perm: np.ndarray) -> None:
        """Permute every per-atom array so new index ``k`` is old ``perm[k]``.

        This is the mutation the data-reordering optimization performs; the
        ``ids`` array keeps the mapping back to original identity.  The
        caller is responsible for remapping any neighbor list built against
        the old ordering (see :func:`repro.core.reorder.remap_neighbor_list`).
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.n_atoms,):
            raise ValueError(
                f"perm must have shape ({self.n_atoms},), got {perm.shape}"
            )
        self.positions = np.ascontiguousarray(self.positions[perm])
        self.velocities = np.ascontiguousarray(self.velocities[perm])
        self.forces = np.ascontiguousarray(self.forces[perm])
        self.rho = np.ascontiguousarray(self.rho[perm])
        self.fp = np.ascontiguousarray(self.fp[perm])
        self.types = np.ascontiguousarray(self.types[perm])
        self.ids = np.ascontiguousarray(self.ids[perm])

    def copy(self) -> "Atoms":
        """Deep copy of the full state (tests compare strategy outputs)."""
        return Atoms(
            box=self.box,
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            forces=self.forces.copy(),
            rho=self.rho.copy(),
            fp=self.fp.copy(),
            types=self.types.copy(),
            ids=self.ids.copy(),
            masses=self.masses.copy(),
        )

    def sorted_by_id(self) -> "Atoms":
        """Copy with atoms restored to id order (undo any reorder)."""
        out = self.copy()
        out.reorder(np.argsort(self.ids, kind="stable"))
        return out
