"""Energy minimization: steepest descent and FIRE.

The micro-deformation workloads start from configurations that should be
relaxed before dynamics; these minimizers drive the max force norm below a
tolerance using the same force calculators (serial or SDC) the dynamics
use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList, build_neighbor_list
from repro.md.observables import force_max_norm
from repro.md.simulation import ForceCalculator, SerialCalculator
from repro.potentials.base import EAMPotential


@dataclass
class MinimizationReport:
    """Convergence record of one minimization run."""

    converged: bool
    n_iterations: int
    final_fmax: float
    energy_history: List[float] = field(default_factory=list)


class _Relaxer:
    """Shared plumbing: neighbor management + force evaluation."""

    def __init__(
        self,
        atoms: Atoms,
        potential: EAMPotential,
        calculator: Optional[ForceCalculator] = None,
        skin: float = 0.3,
    ) -> None:
        self.atoms = atoms
        self.potential = potential
        self.calculator = calculator or SerialCalculator()
        self.skin = skin
        self._nlist: Optional[NeighborList] = None

    def forces_and_energy(self) -> float:
        if self._nlist is None or self._nlist.needs_rebuild(
            self.atoms.positions
        ):
            self._nlist = build_neighbor_list(
                self.atoms.positions,
                self.atoms.box,
                cutoff=self.potential.cutoff,
                skin=self.skin,
                half=True,
            )
        result = self.calculator.compute(
            self.potential, self.atoms, self._nlist
        )
        return result.potential_energy


def steepest_descent(
    atoms: Atoms,
    potential: EAMPotential,
    calculator: Optional[ForceCalculator] = None,
    fmax: float = 1e-3,
    max_iterations: int = 500,
    step: float = 0.05,
    max_displacement: float = 0.1,
) -> MinimizationReport:
    """Gradient descent with backtracking on energy increases.

    ``step`` multiplies forces (Å per eV/Å); displacements are clipped to
    ``max_displacement`` per component per iteration so the line search
    cannot tunnel through neighbors.
    """
    if fmax <= 0 or step <= 0 or max_displacement <= 0:
        raise ValueError("fmax, step and max_displacement must be positive")
    relaxer = _Relaxer(atoms, potential, calculator)
    energy = relaxer.forces_and_energy()
    history = [energy]
    current_step = step
    for iteration in range(max_iterations):
        norm = force_max_norm(atoms)
        if norm < fmax:
            return MinimizationReport(True, iteration, norm, history)
        move = np.clip(
            current_step * atoms.forces, -max_displacement, max_displacement
        )
        previous_positions = atoms.positions.copy()
        atoms.positions = atoms.box.wrap(atoms.positions + move)
        new_energy = relaxer.forces_and_energy()
        if new_energy > energy + 1e-12:
            # backtrack: undo the move, halve the step
            atoms.positions = previous_positions
            current_step *= 0.5
            relaxer.forces_and_energy()
            if current_step < 1e-8:
                return MinimizationReport(
                    False, iteration + 1, force_max_norm(atoms), history
                )
        else:
            energy = new_energy
            history.append(energy)
            current_step = min(current_step * 1.1, step * 4)
    return MinimizationReport(False, max_iterations, force_max_norm(atoms), history)


def fire(
    atoms: Atoms,
    potential: EAMPotential,
    calculator: Optional[ForceCalculator] = None,
    fmax: float = 1e-3,
    max_iterations: int = 1000,
    dt_start: float = 1e-3,
    dt_max: float = 1e-2,
) -> MinimizationReport:
    """FIRE (Fast Inertial Relaxation Engine) minimizer.

    Bitzek et al. (2006): MD steps with velocity mixing toward the force
    direction, accelerating while the power ``F.v`` stays positive and
    quenching when it turns negative.
    """
    if fmax <= 0 or dt_start <= 0 or dt_max < dt_start:
        raise ValueError("need fmax > 0 and 0 < dt_start <= dt_max")
    n_min, f_inc, f_dec, alpha_start, f_alpha = 5, 1.1, 0.5, 0.1, 0.99
    relaxer = _Relaxer(atoms, potential, calculator)
    energy = relaxer.forces_and_energy()
    history = [energy]
    velocities = np.zeros_like(atoms.positions)
    dt = dt_start
    alpha = alpha_start
    steps_since_negative = 0
    for iteration in range(max_iterations):
        norm = force_max_norm(atoms)
        if norm < fmax:
            return MinimizationReport(True, iteration, norm, history)
        forces = atoms.forces
        power = float(np.sum(forces * velocities))
        if power > 0:
            f_norm = np.linalg.norm(forces)
            v_norm = np.linalg.norm(velocities)
            if f_norm > 0:
                velocities = (1.0 - alpha) * velocities + alpha * (
                    v_norm / f_norm
                ) * forces
            steps_since_negative += 1
            if steps_since_negative > n_min:
                dt = min(dt * f_inc, dt_max)
                alpha *= f_alpha
        else:
            velocities[:] = 0.0
            dt *= f_dec
            alpha = alpha_start
            steps_since_negative = 0
        velocities = velocities + dt * forces
        atoms.positions = atoms.box.wrap(atoms.positions + dt * velocities)
        energy = relaxer.forces_and_energy()
        history.append(energy)
    return MinimizationReport(False, max_iterations, force_max_norm(atoms), history)
