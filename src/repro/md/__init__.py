"""Molecular-dynamics substrate: atoms, neighbor lists, integration, driver."""

from repro.md.analysis import (
    mean_squared_displacement,
    radial_distribution,
)
from repro.md.atoms import Atoms
from repro.md.calculator import EAMCalculator
from repro.md.neighbor import CellList, NeighborList, build_neighbor_list
from repro.md.integrators import VelocityVerlet
from repro.md.minimize import fire, steepest_descent
from repro.md.observables import (
    kinetic_energy,
    temperature,
    total_momentum,
    virial_pressure,
)
from repro.md.simulation import Simulation, SimulationReport
from repro.md.thermostats import BerendsenThermostat, VelocityRescaleThermostat

__all__ = [
    "Atoms",
    "EAMCalculator",
    "radial_distribution",
    "mean_squared_displacement",
    "fire",
    "steepest_descent",
    "CellList",
    "NeighborList",
    "build_neighbor_list",
    "VelocityVerlet",
    "Simulation",
    "SimulationReport",
    "BerendsenThermostat",
    "VelocityRescaleThermostat",
    "kinetic_energy",
    "temperature",
    "total_momentum",
    "virial_pressure",
]
