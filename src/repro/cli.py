"""Command-line interface: ``python -m repro <command>``.

Commands mirror the reproduced artifacts so a user can regenerate any of
them without writing code:

* ``table1``     — Table I (SDC speedups by dimensionality).
* ``fig9``       — the four strategy-comparison panels.
* ``reordering`` — the Section II.D data-reordering gains.
* ``census``     — the Section II.B subdomain census.
* ``quickstart`` — a short real MD run through SDC.
* ``hybrid``     — the future-work MPI+OpenMP scaling model.
* ``racecheck``  — dynamic write-set race detection + differential
  strategy equivalence (exit 1 on any conflict/divergence).
* ``bench``      — real wall-clock strategy × backend sweep with
  per-phase profiling (writes ``BENCH_forces.json`` /
  ``BENCH_reordering.json``).
* ``trace``      — traced case × strategy × backend MD runs (writes
  Perfetto ``trace.json``, ``metrics.jsonl`` and ``run.jsonl``, and
  prints the load-imbalance summary).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.runner import ExperimentRunner
    from repro.harness.table1 import reproduce_table1

    result = reproduce_table1(ExperimentRunner())
    print(result.render())
    print(
        f"\nmean relative error vs paper: "
        f"{result.mean_relative_error() * 100:.1f}% "
        f"(blank pattern matches: {result.blank_pattern_matches()})"
    )
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.harness.fig9 import reproduce_all_panels
    from repro.harness.runner import ExperimentRunner

    for panel in reproduce_all_panels(ExperimentRunner()):
        print(panel.render())
        print()
    return 0


def _cmd_reordering(args: argparse.Namespace) -> int:
    from repro.harness.reordering import reproduce_reordering
    from repro.harness.runner import ExperimentRunner

    print(reproduce_reordering(ExperimentRunner()).render())
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from repro.harness.census import census, render_census

    print(render_census(census()))
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    import repro

    atoms, report = repro.quickstart(
        n_cells=args.cells, n_steps=args.steps
    )
    energies = report.energies()
    drift = abs(energies[-1] - energies[0]) / abs(energies[0])
    print(
        f"{atoms.n_atoms} atoms, {report.n_steps} steps through SDC: "
        f"relative energy drift {drift:.2e}"
    )
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from repro.harness.cases import case_by_key
    from repro.parallel.cluster import ClusterConfig, hybrid_scaling_study
    from repro.parallel.machine import paper_machine

    case = case_by_key(args.case)
    cluster = ClusterConfig(machine=paper_machine())
    results = hybrid_scaling_study(
        case.n_atoms, case.box(), args.nodes, args.threads, cluster
    )
    print(f"{case.label}: {case.n_atoms:,} atoms, {args.threads} threads/node")
    print(" nodes   cores  speedup  efficiency")
    for r in results:
        print(
            f"  {r.n_nodes:4d} {r.total_cores:7d} {r.speedup:8.1f} "
            f"{r.speedup / r.total_cores:10.1%}"
        )
    return 0


def _cmd_racecheck(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.racecheck import run_racecheck

    strategies = args.strategy or ["sdc"]
    if args.all:
        from repro.core.strategies import STRATEGY_REGISTRY

        strategies = sorted(n for n in STRATEGY_REGISTRY if n != "serial")
    workloads = args.workload or ["uniform"]

    from repro.core.domain import DecompositionError

    reports = []
    for strategy in strategies:
        for workload in workloads:
            try:
                reports.append(
                    run_racecheck(
                        strategy=strategy,
                        workload=workload,
                        cells=args.cells,
                        backend=args.backend,
                        n_threads=args.threads,
                        dims=args.dims,
                        inject=args.inject,
                        seed=args.seed,
                        tolerance=args.tolerance,
                    )
                )
            except (ValueError, DecompositionError) as exc:
                print(f"error: {strategy} on {workload}: {exc}", file=sys.stderr)
                return 2

    header = (
        f"{'strategy':<22} {'workload':<9} {'backend':<9} "
        f"{'phases':>6} {'conflicts':>9} {'canary':>6} "
        f"{'max|dF|':>10}  verdict"
    )
    print(header)
    print("-" * len(header))
    for r in reports:
        verdict = "ok" if r.ok else "FAIL"
        if not r.lock_free and not r.race_free:
            verdict += " (overlaps expected: synchronized strategy)"
        force_err = (
            f"{r.max_force_error:.2e}" if r.max_force_error is not None else "-"
        )
        print(
            f"{r.strategy:<22} {r.workload:<9} {r.backend:<9} "
            f"{r.n_phases:>6} {r.n_conflicting_elements:>9} "
            f"{'ok' if r.canary_ok else 'FAIL':>6} {force_err:>10}  {verdict}"
        )
    failures = [r for r in reports if not r.ok]
    for r in failures:
        for c in r.conflicts[:5]:
            print(
                f"  conflict: strategy={r.strategy} phase={c.phase} "
                f"tasks=({c.task_a},{c.task_b}) index={c.index} "
                f"array={c.array}"
            )
    if args.json:
        payload = json.dumps([r.to_dict() for r in reports], indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry, record_racecheck_metrics

        registry = MetricsRegistry()
        for r in reports:
            record_racecheck_metrics(registry, r)
        registry.write_jsonl(args.metrics)
        print(f"wrote {args.metrics}")
    print(
        f"\n{len(reports) - len(failures)}/{len(reports)} runs clean"
        + (f"; {len(failures)} FAILED" if failures else "")
    )
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.harness.bench import (
        QUICK_BACKENDS,
        QUICK_CASES,
        QUICK_STRATEGIES,
        bench_forces,
        render_bench_table,
        reordering_records,
        write_bench_json,
    )
    from repro.harness.cases import case_by_key
    from repro.harness.reordering import measure_reordering

    if args.quick:
        cases = list(args.case or QUICK_CASES)
        strategies = list(args.strategy or QUICK_STRATEGIES)
        backends = list(args.backend or QUICK_BACKENDS)
        warmup = min(args.warmup, 1)
        repeats = min(args.repeats, 3)
        reorder_case = "tiny"
    else:
        from repro.harness.bench import (
            DEFAULT_BACKENDS,
            DEFAULT_CASES,
            DEFAULT_STRATEGIES,
        )

        cases = list(args.case or DEFAULT_CASES)
        strategies = list(args.strategy or DEFAULT_STRATEGIES)
        backends = list(args.backend or DEFAULT_BACKENDS)
        warmup = args.warmup
        repeats = args.repeats
        reorder_case = "demo"

    records = bench_forces(
        cases=cases,
        strategies=strategies,
        backends=backends,
        n_workers=args.threads,
        warmup=warmup,
        repeats=repeats,
        on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
    )
    print(render_bench_table(records))

    reorder = measure_reordering(
        case=case_by_key(reorder_case),
        n_threads=args.threads,
        warmup=warmup,
        repeats=repeats,
    )
    print()
    print(reorder.render())

    os.makedirs(args.output_dir, exist_ok=True)
    forces_path = os.path.join(args.output_dir, "BENCH_forces.json")
    reorder_path = os.path.join(args.output_dir, "BENCH_reordering.json")
    write_bench_json(
        forces_path, [r.to_dict() for r in records], n_threads=args.threads
    )
    write_bench_json(
        reorder_path, reordering_records(reorder), n_threads=args.threads
    )
    print(f"\nwrote {forces_path}\nwrote {reorder_path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.harness.tracing import (
        DEFAULT_BACKENDS,
        DEFAULT_CASES,
        DEFAULT_STRATEGIES,
        run_trace,
    )

    report = run_trace(
        cases=list(args.case or DEFAULT_CASES),
        strategies=list(args.strategy or DEFAULT_STRATEGIES),
        backends=list(args.backend or DEFAULT_BACKENDS),
        n_workers=args.threads,
        steps=args.steps,
        output_dir=args.output_dir,
        on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
    )
    print(report.render_summary(top=args.top))
    if report.trace_path is not None:
        print(
            f"\nwrote {report.trace_path}"
            f"\nwrote {report.metrics_path}"
            f"\nwrote {report.runlog_path}"
        )
        print(
            "open the trace at https://ui.perfetto.dev or chrome://tracing"
        )
    return 0 if report.runs else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDC-EAM paper reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table I").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("fig9", help="reproduce Fig. 9").set_defaults(func=_cmd_fig9)
    sub.add_parser(
        "reordering", help="reproduce the Section II.D gains"
    ).set_defaults(func=_cmd_reordering)
    sub.add_parser(
        "census", help="Section II.B subdomain census"
    ).set_defaults(func=_cmd_census)

    quick = sub.add_parser("quickstart", help="run a short SDC MD trajectory")
    quick.add_argument("--cells", type=int, default=6)
    quick.add_argument("--steps", type=int, default=20)
    quick.set_defaults(func=_cmd_quickstart)

    hybrid = sub.add_parser(
        "hybrid", help="future-work hybrid MPI+OpenMP scaling model"
    )
    hybrid.add_argument("--case", default="large4")
    hybrid.add_argument("--threads", type=int, default=16)
    hybrid.add_argument(
        "--nodes", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    hybrid.set_defaults(func=_cmd_hybrid)

    race = sub.add_parser(
        "racecheck",
        help="dynamic race detection + strategy equivalence sweep",
    )
    race.add_argument(
        "--strategy",
        action="append",
        help="strategy to check (repeatable; default sdc)",
    )
    race.add_argument(
        "--all",
        action="store_true",
        help="sweep every registered strategy except serial",
    )
    race.add_argument(
        "--workload",
        action="append",
        choices=["uniform", "void", "slab"],
        help="workload to check (repeatable; default uniform)",
    )
    race.add_argument("--cells", type=int, default=6)
    race.add_argument(
        "--backend",
        choices=["serial", "threads", "processes"],
        default="serial",
    )
    race.add_argument("--threads", type=int, default=4)
    race.add_argument("--dims", type=int, default=2, choices=[1, 2, 3])
    race.add_argument(
        "--inject",
        choices=["none", "merge-colors", "drop-barrier", "small-subdomains"],
        default="none",
        help="corrupt the SDC schedule and let the detector catch it",
    )
    race.add_argument("--seed", type=int, default=0)
    race.add_argument("--tolerance", type=float, default=1e-8)
    race.add_argument(
        "--json", help="write the JSON report here ('-' for stdout)"
    )
    race.add_argument(
        "--metrics",
        help="write conflict counts as a metrics.jsonl stream here "
        "(same schema as `repro trace`)",
    )
    race.set_defaults(func=_cmd_racecheck)

    bench = sub.add_parser(
        "bench",
        help="real wall-clock strategy x backend sweep (per-phase medians)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration: tiny case, {serial,sdc-2d} x "
        "{serial,threads}, <=3 repeats",
    )
    bench.add_argument(
        "--case",
        action="append",
        help="case key to sweep (repeatable; default depends on --quick)",
    )
    bench.add_argument(
        "--strategy",
        action="append",
        help="strategy key (serial, sdc-1d/2d/3d, critical-section, "
        "array-privatization, redundant-computation, atomic, localwrite)",
    )
    bench.add_argument(
        "--backend",
        action="append",
        choices=["serial", "threads", "processes"],
        help="backend to sweep (repeatable)",
    )
    bench.add_argument("--threads", type=int, default=2)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument("--repeats", type=int, default=5)
    bench.add_argument(
        "--output-dir",
        default=".",
        help="directory for BENCH_forces.json / BENCH_reordering.json",
    )
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="traced MD runs: Perfetto trace.json + metrics.jsonl + "
        "load-imbalance summary",
    )
    trace.add_argument(
        "--case",
        action="append",
        help="case key to trace (repeatable; default tiny)",
    )
    trace.add_argument(
        "--strategy",
        action="append",
        help="strategy key (sdc, sdc-1d/2d/3d, critical-section, "
        "array-privatization, redundant-computation, atomic, localwrite; "
        "repeatable; default sdc)",
    )
    trace.add_argument(
        "--backend",
        action="append",
        choices=["serial", "threads", "processes"],
        help="backend to trace (repeatable; default threads)",
    )
    trace.add_argument("--threads", type=int, default=2)
    trace.add_argument("--steps", type=int, default=2)
    trace.add_argument(
        "--top", type=int, default=10, help="summary rows to print"
    )
    trace.add_argument(
        "--output-dir",
        default="trace-out",
        help="directory for trace.json / metrics.jsonl / run.jsonl",
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
