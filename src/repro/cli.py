"""Command-line interface: ``python -m repro <command>``.

Commands mirror the reproduced artifacts so a user can regenerate any of
them without writing code:

* ``table1``     — Table I (SDC speedups by dimensionality).
* ``fig9``       — the four strategy-comparison panels.
* ``reordering`` — the Section II.D data-reordering gains.
* ``census``     — the Section II.B subdomain census.
* ``quickstart`` — a short real MD run through SDC.
* ``hybrid``     — the future-work MPI+OpenMP scaling model.
* ``racecheck``  — dynamic write-set race detection + differential
  strategy equivalence (exit 1 on any conflict/divergence).
* ``bench``      — real wall-clock strategy × backend sweep with
  per-phase profiling (writes ``BENCH_forces.json`` /
  ``BENCH_reordering.json``).
* ``trace``      — traced case × strategy × backend MD runs (writes
  Perfetto ``trace.json``, ``metrics.jsonl`` and ``run.jsonl``, and
  prints the load-imbalance summary).  ``--sample-resources`` co-runs
  the /proc resource sampler and merges CPU/RSS/context-switch/shm
  counter tracks into the trace.
* ``scale``      — worker-count sweep of one (case, strategy, backend,
  kernel-tier) cell: speedup / efficiency / Karp–Flatt per point plus
  the loss attribution (serial, imbalance, barrier, resource pressure,
  excess work), written as ``scaling.json`` + ``kind:"scaling"``
  history records that ``repro report`` renders.
* ``compare``    — regression-gate a candidate bench run against a
  baseline (median/IQR overlap + relative threshold; exit 1 on a hard
  regression).
* ``report``     — render the self-contained HTML performance dashboard
  (speedup curves, strategy bars, imbalance metrics, history trends)
  plus a terminal summary.
* ``doctor``     — self-check workload through every layer (environment,
  kernel tier, physics invariants, process engine, recorder round-trip);
  prints the diagnosis table, dumps ``health.jsonl``, exits 1 on any
  critical finding.  ``--inject`` deliberately breaks one layer so the
  failure visibility itself can be tested.
* ``health``     — summarize a run directory's ``health.jsonl`` (event
  counts by category/severity, notable warnings); exit 2 when the
  artifact is missing/invalid, and with ``--strict`` exit 1 when any
  warning-or-worse event was recorded.

``bench`` and ``trace`` accept ``--store`` to append their artifacts to
the performance-history store (default ``.repro/history.jsonl``) that
``compare`` and ``report`` read.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.runner import ExperimentRunner
    from repro.harness.table1 import reproduce_table1

    result = reproduce_table1(ExperimentRunner())
    print(result.render())
    print(
        f"\nmean relative error vs paper: "
        f"{result.mean_relative_error() * 100:.1f}% "
        f"(blank pattern matches: {result.blank_pattern_matches()})"
    )
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.harness.fig9 import reproduce_all_panels
    from repro.harness.runner import ExperimentRunner

    for panel in reproduce_all_panels(ExperimentRunner()):
        print(panel.render())
        print()
    return 0


def _cmd_reordering(args: argparse.Namespace) -> int:
    from repro.harness.reordering import reproduce_reordering
    from repro.harness.runner import ExperimentRunner

    print(reproduce_reordering(ExperimentRunner()).render())
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from repro.harness.census import census, render_census

    print(render_census(census()))
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    import repro

    atoms, report = repro.quickstart(
        n_cells=args.cells, n_steps=args.steps
    )
    energies = report.energies()
    drift = abs(energies[-1] - energies[0]) / abs(energies[0])
    print(
        f"{atoms.n_atoms} atoms, {report.n_steps} steps through SDC: "
        f"relative energy drift {drift:.2e}"
    )
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from repro.harness.cases import case_by_key
    from repro.parallel.cluster import ClusterConfig, hybrid_scaling_study
    from repro.parallel.machine import paper_machine

    case = case_by_key(args.case)
    cluster = ClusterConfig(machine=paper_machine())
    results = hybrid_scaling_study(
        case.n_atoms, case.box(), args.nodes, args.threads, cluster
    )
    print(f"{case.label}: {case.n_atoms:,} atoms, {args.threads} threads/node")
    print(" nodes   cores  speedup  efficiency")
    for r in results:
        print(
            f"  {r.n_nodes:4d} {r.total_cores:7d} {r.speedup:8.1f} "
            f"{r.speedup / r.total_cores:10.1%}"
        )
    return 0


def _cmd_racecheck(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.racecheck import run_racecheck

    strategies = args.strategy or ["sdc"]
    if args.all:
        from repro.core.strategies import STRATEGY_REGISTRY

        strategies = sorted(n for n in STRATEGY_REGISTRY if n != "serial")
    workloads = args.workload or ["uniform"]

    from repro.core.domain import DecompositionError

    reports = []
    for strategy in strategies:
        for workload in workloads:
            try:
                reports.append(
                    run_racecheck(
                        strategy=strategy,
                        workload=workload,
                        cells=args.cells,
                        backend=args.backend,
                        n_threads=args.threads,
                        dims=args.dims,
                        inject=args.inject,
                        seed=args.seed,
                        tolerance=args.tolerance,
                    )
                )
            except (ValueError, DecompositionError) as exc:
                print(f"error: {strategy} on {workload}: {exc}", file=sys.stderr)
                return 2

    header = (
        f"{'strategy':<22} {'workload':<9} {'backend':<9} "
        f"{'phases':>6} {'conflicts':>9} {'canary':>6} "
        f"{'max|dF|':>10}  verdict"
    )
    print(header)
    print("-" * len(header))
    for r in reports:
        verdict = "ok" if r.ok else "FAIL"
        if not r.lock_free and not r.race_free:
            verdict += " (overlaps expected: synchronized strategy)"
        force_err = (
            f"{r.max_force_error:.2e}" if r.max_force_error is not None else "-"
        )
        print(
            f"{r.strategy:<22} {r.workload:<9} {r.backend:<9} "
            f"{r.n_phases:>6} {r.n_conflicting_elements:>9} "
            f"{'ok' if r.canary_ok else 'FAIL':>6} {force_err:>10}  {verdict}"
        )
    failures = [r for r in reports if not r.ok]
    for r in failures:
        for c in r.conflicts[:5]:
            print(
                f"  conflict: strategy={r.strategy} phase={c.phase} "
                f"tasks=({c.task_a},{c.task_b}) index={c.index} "
                f"array={c.array}"
            )
    if args.json:
        payload = json.dumps([r.to_dict() for r in reports], indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry, record_racecheck_metrics

        registry = MetricsRegistry()
        for r in reports:
            record_racecheck_metrics(registry, r)
        registry.write_jsonl(args.metrics)
        print(f"wrote {args.metrics}")
    print(
        f"\n{len(reports) - len(failures)}/{len(reports)} runs clean"
        + (f"; {len(failures)} FAILED" if failures else "")
    )
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.harness.bench import (
        QUICK_BACKENDS,
        QUICK_CASES,
        QUICK_STRATEGIES,
        bench_forces,
        bench_payload,
        bench_steps,
        render_amortization_table,
        render_bench_table,
        render_tier_speedup_table,
        reordering_records,
        tier_speedup_records,
        write_bench_json,
    )
    from repro.harness.cases import case_by_key
    from repro.harness.reordering import measure_reordering

    if args.quick:
        cases = list(args.case or QUICK_CASES)
        strategies = list(args.strategy or QUICK_STRATEGIES)
        backends = list(args.backend or QUICK_BACKENDS)
        warmup = min(args.warmup, 1)
        repeats = min(args.repeats, 3)
        reorder_case = "tiny"
    else:
        from repro.harness.bench import (
            DEFAULT_BACKENDS,
            DEFAULT_CASES,
            DEFAULT_STRATEGIES,
        )

        cases = list(args.case or DEFAULT_CASES)
        strategies = list(args.strategy or DEFAULT_STRATEGIES)
        backends = list(args.backend or DEFAULT_BACKENDS)
        warmup = args.warmup
        repeats = args.repeats
        reorder_case = "demo"

    if args.steps > 1:
        records = bench_steps(
            cases=cases,
            strategies=strategies,
            backends=backends,
            n_workers=args.threads,
            steps=args.steps,
            on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
            kernel_tier=args.kernel_tier,
        )
        print(render_bench_table(records))
        print()
        print(render_amortization_table(records))
    else:
        records = bench_forces(
            cases=cases,
            strategies=strategies,
            backends=backends,
            n_workers=args.threads,
            warmup=warmup,
            repeats=repeats,
            on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
            kernel_tier=args.kernel_tier,
        )
        print(render_bench_table(records))

    speedup_rows = None
    if args.speedup_vs:
        run = bench_steps if args.steps > 1 else bench_forces
        kwargs = (
            dict(steps=args.steps)
            if args.steps > 1
            else dict(warmup=warmup, repeats=repeats)
        )
        reference = run(
            cases=cases,
            strategies=strategies,
            backends=backends,
            n_workers=args.threads,
            on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
            kernel_tier=args.speedup_vs,
            **kwargs,
        )
        speedup_rows = tier_speedup_records(records, reference)
        print()
        print(render_tier_speedup_table(speedup_rows))

    reorder = None
    if args.steps <= 1 and not args.skip_reordering:
        reorder = measure_reordering(
            case=case_by_key(reorder_case),
            n_threads=args.threads,
            warmup=warmup,
            repeats=repeats,
        )
        print()
        print(reorder.render())

    os.makedirs(args.output_dir, exist_ok=True)
    forces_path = os.path.join(args.output_dir, "BENCH_forces.json")
    write_bench_json(
        forces_path, [r.to_dict() for r in records], n_threads=args.threads
    )
    print(f"\nwrote {forces_path}")
    if speedup_rows:
        speedup_path = os.path.join(args.output_dir, "BENCH_tier_speedup.json")
        write_bench_json(speedup_path, speedup_rows, n_threads=args.threads)
        print(f"wrote {speedup_path}")
    if reorder is not None:
        reorder_path = os.path.join(args.output_dir, "BENCH_reordering.json")
        write_bench_json(
            reorder_path, reordering_records(reorder), n_threads=args.threads
        )
        print(f"wrote {reorder_path}")
    if args.store:
        from repro.obs.history import RunStore

        store = RunStore(args.store)
        store.append_bench(
            bench_payload(
                [r.to_dict() for r in records], n_threads=args.threads
            )
        )
        if speedup_rows:
            store.append_bench(
                bench_payload(speedup_rows, n_threads=args.threads),
                source="BENCH_tier_speedup.json",
                kind="tier-speedup",
            )
        if reorder is not None:
            store.append_bench(
                bench_payload(
                    reordering_records(reorder), n_threads=args.threads
                ),
                source="BENCH_reordering.json",
                kind="reordering",
            )
        print(f"appended to history store {store.path}")
    return 0


def _load_bench_payload(ref: str):
    """Read a ``repro-bench`` payload from a file or artifact directory."""
    import json
    import os

    path = ref
    if os.path.isdir(path):
        path = os.path.join(path, "BENCH_forces.json")
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = str(payload.get("schema", ""))
    if not schema.startswith("repro-bench"):
        raise ValueError(f"{path}: not a repro-bench payload ({schema!r})")
    return payload, path


def _cmd_compare(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.obs.atomicio import atomic_write_text
    from repro.obs.history import RunStore
    from repro.obs.regress import compare_payloads

    try:
        candidate, candidate_path = _load_bench_payload(args.candidate)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: candidate: {exc}", file=sys.stderr)
        return 2

    gate_phases = (
        _all_phases(candidate) if args.all_phases else ("total",)
    )
    store = RunStore(args.store) if args.store else None
    baseline, baseline_path = None, None
    if args.baseline:
        try:
            baseline, baseline_path = _load_bench_payload(args.baseline)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: baseline: {exc}", file=sys.stderr)
            return 2
    else:
        committed = "BENCH_forces.json"
        if (
            os.path.exists(committed)
            and os.path.abspath(committed)
            != os.path.abspath(candidate_path)
        ):
            baseline, baseline_path = _load_bench_payload(committed)
        elif store is not None:
            entry = store.baseline_bench()
            if entry is not None:
                baseline = {
                    "schema": "repro-bench-v2",
                    "meta": entry.meta,
                    "records": entry.records,
                }
                baseline_path = f"{store.path}#seq{entry.seq}"
    if baseline is None:
        print(
            "no baseline found (no --baseline, no committed "
            "BENCH_forces.json, empty history store) — nothing to "
            "compare against",
            file=sys.stderr,
        )
        return 0
    report = compare_payloads(
        baseline,
        candidate,
        threshold=args.threshold,
        gate_phases=gate_phases,
    )
    print(f"candidate: {candidate_path}")
    print(f"baseline:  {baseline_path}")
    print()
    print(report.render())
    if args.json:
        atomic_write_text(
            args.json, json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    if store is not None:
        store.append_bench(candidate, source=candidate_path)
        print(f"appended candidate to history store {store.path}")
    if report.exit_code and args.warn_only:
        print(
            "warning: hard regression detected (soft-fail mode, exiting 0)",
            file=sys.stderr,
        )
        return 0
    return report.exit_code


def _all_phases(payload) -> tuple:
    return tuple(
        sorted(
            {
                str(r["phase"])
                for r in payload.get("records", [])
                if isinstance(r, dict) and "phase" in r
            }
        )
    )


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.obs.report import (
        load_report_source,
        render_text_summary,
        write_report,
    )

    if not os.path.exists(args.source):
        print(f"error: no such source {args.source!r}", file=sys.stderr)
        return 2
    data = load_report_source(args.source, store_path=args.store)
    print(render_text_summary(data, top=args.top))
    write_report(args.output, data)
    print(f"\nwrote {args.output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.harness.tracing import (
        DEFAULT_BACKENDS,
        DEFAULT_CASES,
        DEFAULT_STRATEGIES,
        run_trace,
    )

    report = run_trace(
        cases=list(args.case or DEFAULT_CASES),
        strategies=list(args.strategy or DEFAULT_STRATEGIES),
        backends=list(args.backend or DEFAULT_BACKENDS),
        n_workers=args.threads,
        steps=args.steps,
        output_dir=args.output_dir,
        on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
        store_path=args.store,
        kernel_tier=args.kernel_tier,
        sample_resources=args.sample_resources,
    )
    print(report.render_summary(top=args.top))
    if report.trace_path is not None:
        print(
            f"\nwrote {report.trace_path}"
            f"\nwrote {report.metrics_path}"
            f"\nwrote {report.runlog_path}"
            f"\nwrote {report.health_path}"
        )
        print(
            "open the trace at https://ui.perfetto.dev or chrome://tracing"
        )
    if report.store_path is not None:
        print(f"appended to history store {report.store_path}")
    return 0 if report.runs else 1


def _parse_workers(text: str) -> list:
    """``"1,2,4"`` -> ``[1, 2, 4]`` (argparse type for ``--workers``)."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid worker list {text!r} (expected e.g. 1,2,4)"
        )
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"worker counts must be >= 1 (got {text!r})"
        )
    return values


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.harness.scaling import run_scale
    from repro.obs.history import DEFAULT_STORE_PATH

    store = args.store if args.store is not None else DEFAULT_STORE_PATH
    report = run_scale(
        case=args.case,
        strategy=args.strategy,
        backend=args.backend,
        workers=args.workers,
        steps=args.steps,
        kernel_tier=args.kernel_tier,
        output_dir=args.output_dir,
        store_path=store or None,
        sample_resources=args.sample_resources,
        sample_interval_s=args.sample_interval,
        on_skip=lambda msg: print(f"skip: {msg}", file=sys.stderr),
    )
    print(report.render_summary(top=args.top))
    if report.trace_path is not None:
        print(
            f"\nwrote {report.trace_path}"
            f"\nwrote {report.metrics_path}"
            f"\nwrote {report.scaling_path}"
            f"\nwrote {report.health_path}"
        )
        print(
            "open the trace at https://ui.perfetto.dev or chrome://tracing"
        )
    if report.store_path is not None:
        print(f"appended scaling records to history store {report.store_path}")
    return 0 if report.points else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.harness.doctor import run_doctor

    report = run_doctor(
        case=args.case,
        steps=args.steps,
        n_workers=args.workers,
        kernel_tier=args.kernel_tier,
        inject=args.inject,
        output_dir=args.output_dir,
    )
    print(report.render())
    if report.health_path is not None:
        print(f"\nwrote {report.health_path}")
    return report.exit_code


def _cmd_health(args: argparse.Namespace) -> int:
    import os

    from repro.obs.recorder import read_health_jsonl, severity_rank

    path = args.source
    if os.path.isdir(path):
        path = os.path.join(path, "health.jsonl")
    if not os.path.exists(path):
        print(f"error: no health.jsonl at {path!r}", file=sys.stderr)
        return 2
    try:
        meta, events = read_health_jsonl(path)
    except (ValueError, OSError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 2
    counts = meta.get("counts") or {}
    print(
        f"{path}: {len(events)} events in ring "
        f"({meta.get('n_recorded')} recorded, "
        f"{meta.get('n_dropped')} evicted)"
    )
    by_key = {
        k: v for k, v in sorted(counts.items()) if isinstance(v, int)
    }
    for key, n in by_key.items():
        print(f"  {key:<32} {n}")
    notable = [
        e
        for e in events
        if severity_rank(str(e.get("severity", "info")))
        >= severity_rank("warning")
    ]
    if notable:
        print(f"\n{len(notable)} warning+ events:")
        for e in notable[-args.top:]:
            extras = {
                k: v
                for k, v in e.items()
                if k not in ("kind", "t", "category", "event", "severity")
            }
            print(
                f"  [{e.get('severity')}] {e.get('category')}/"
                f"{e.get('event')} {extras}"
            )
    else:
        print("\nno warning-or-worse events recorded")
    if args.strict and notable:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    from repro.kernels import TIER_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDC-EAM paper reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table I").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("fig9", help="reproduce Fig. 9").set_defaults(func=_cmd_fig9)
    sub.add_parser(
        "reordering", help="reproduce the Section II.D gains"
    ).set_defaults(func=_cmd_reordering)
    sub.add_parser(
        "census", help="Section II.B subdomain census"
    ).set_defaults(func=_cmd_census)

    quick = sub.add_parser("quickstart", help="run a short SDC MD trajectory")
    quick.add_argument("--cells", type=int, default=6)
    quick.add_argument("--steps", type=int, default=20)
    quick.set_defaults(func=_cmd_quickstart)

    hybrid = sub.add_parser(
        "hybrid", help="future-work hybrid MPI+OpenMP scaling model"
    )
    hybrid.add_argument("--case", default="large4")
    hybrid.add_argument("--threads", type=int, default=16)
    hybrid.add_argument(
        "--nodes", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    hybrid.set_defaults(func=_cmd_hybrid)

    race = sub.add_parser(
        "racecheck",
        help="dynamic race detection + strategy equivalence sweep",
    )
    race.add_argument(
        "--strategy",
        action="append",
        help="strategy to check (repeatable; default sdc)",
    )
    race.add_argument(
        "--all",
        action="store_true",
        help="sweep every registered strategy except serial",
    )
    race.add_argument(
        "--workload",
        action="append",
        choices=["uniform", "void", "slab"],
        help="workload to check (repeatable; default uniform)",
    )
    race.add_argument("--cells", type=int, default=6)
    race.add_argument(
        "--backend",
        choices=["serial", "threads", "processes"],
        default="serial",
    )
    race.add_argument("--threads", type=int, default=4)
    race.add_argument("--dims", type=int, default=2, choices=[1, 2, 3])
    race.add_argument(
        "--inject",
        choices=["none", "merge-colors", "drop-barrier", "small-subdomains"],
        default="none",
        help="corrupt the SDC schedule and let the detector catch it",
    )
    race.add_argument("--seed", type=int, default=0)
    race.add_argument("--tolerance", type=float, default=1e-8)
    race.add_argument(
        "--json", help="write the JSON report here ('-' for stdout)"
    )
    race.add_argument(
        "--metrics",
        help="write conflict counts as a metrics.jsonl stream here "
        "(same schema as `repro trace`)",
    )
    race.set_defaults(func=_cmd_racecheck)

    bench = sub.add_parser(
        "bench",
        help="real wall-clock strategy x backend sweep (per-phase medians)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration: tiny case, {serial,sdc-2d} x "
        "{serial,threads}, <=3 repeats",
    )
    bench.add_argument(
        "--case",
        action="append",
        help="case key to sweep (repeatable; default depends on --quick)",
    )
    bench.add_argument(
        "--strategy",
        action="append",
        help="strategy key (serial, sdc-1d/2d/3d, critical-section, "
        "array-privatization, redundant-computation, atomic, localwrite)",
    )
    bench.add_argument(
        "--backend",
        action="append",
        choices=["serial", "threads", "processes", "sharded"],
        help="backend to sweep (repeatable)",
    )
    bench.add_argument("--threads", type=int, default=2)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument("--repeats", type=int, default=5)
    bench.add_argument(
        "--steps",
        type=int,
        default=1,
        help="repeated-compute mode: call compute N times per cell on one "
        "calculator and report first_step vs amortized per-step records "
        "(exercises the persistent process engine's steady state; skips "
        "the reordering measurement)",
    )
    bench.add_argument(
        "--output-dir",
        default=".",
        help="directory for BENCH_forces.json / BENCH_reordering.json",
    )
    bench.add_argument(
        "--skip-reordering",
        action="store_true",
        help="skip the Section II.D reordering measurement (faster "
        "perf-gate smoke)",
    )
    bench.add_argument(
        "--store",
        help="append the bench payloads to this performance-history "
        "store (e.g. .repro/history.jsonl)",
    )
    bench.add_argument(
        "--kernel-tier",
        choices=list(TIER_NAMES),
        default=None,
        help="kernel tier variant for the swept cells (default: the "
        "session's active tier; numba variants fall back to numpy with "
        "a warning when unavailable)",
    )
    bench.add_argument(
        "--speedup-vs",
        metavar="TIER",
        default=None,
        help="also sweep the same cells on this reference tier and "
        "append per-cell total-phase tier-speedup records to --store "
        "(e.g. --kernel-tier numba-parallel --speedup-vs numpy)",
    )
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="traced MD runs: Perfetto trace.json + metrics.jsonl + "
        "load-imbalance summary",
    )
    trace.add_argument(
        "--case",
        action="append",
        help="case key to trace (repeatable; default tiny)",
    )
    trace.add_argument(
        "--strategy",
        action="append",
        help="strategy key (sdc, sdc-1d/2d/3d, critical-section, "
        "array-privatization, redundant-computation, atomic, localwrite; "
        "repeatable; default sdc)",
    )
    trace.add_argument(
        "--backend",
        action="append",
        choices=["serial", "threads", "processes", "sharded"],
        help="backend to trace (repeatable; default threads)",
    )
    trace.add_argument("--threads", type=int, default=2)
    trace.add_argument("--steps", type=int, default=2)
    trace.add_argument(
        "--top", type=int, default=10, help="summary rows to print"
    )
    trace.add_argument(
        "--output-dir",
        default="trace-out",
        help="directory for trace.json / metrics.jsonl / run.jsonl",
    )
    trace.add_argument(
        "--store",
        help="append the metrics and run-log streams to this "
        "performance-history store",
    )
    trace.add_argument(
        "--kernel-tier",
        choices=list(TIER_NAMES),
        default=None,
        help="kernel tier variant for the traced cells (default: the "
        "session's active tier)",
    )
    trace.add_argument(
        "--sample-resources",
        action="store_true",
        help="co-run the /proc resource sampler: CPU/RSS/context-switch/"
        "shm counter tracks for the parent and every pool worker merge "
        "into trace.json",
    )
    trace.set_defaults(func=_cmd_trace)

    scale = sub.add_parser(
        "scale",
        help="worker-count sweep: speedup/efficiency/Karp-Flatt + loss "
        "attribution (writes scaling.json and kind:scaling history "
        "records)",
    )
    scale.add_argument(
        "--case", default="small", help="case key to sweep (default small)"
    )
    scale.add_argument(
        "--strategy",
        default="sdc",
        help="strategy key for the swept cell (default sdc)",
    )
    scale.add_argument(
        "--backend",
        choices=["serial", "threads", "processes", "sharded"],
        default="processes",
        help="backend to sweep (default processes, so per-worker "
        "resource tracks appear in the trace)",
    )
    scale.add_argument(
        "--workers",
        type=_parse_workers,
        default=[1, 2],
        help="comma-separated worker counts to sweep (default 1,2; "
        "include 1 so T(1) is measured rather than estimated)",
    )
    scale.add_argument("--steps", type=int, default=3)
    scale.add_argument(
        "--kernel-tier",
        choices=list(TIER_NAMES),
        default=None,
        help="kernel tier variant for the swept cell (default: the "
        "session's active tier)",
    )
    scale.add_argument(
        "--output-dir",
        default="scale-out",
        help="directory for trace.json / metrics.jsonl / scaling.json / "
        "health.jsonl",
    )
    scale.add_argument(
        "--store",
        default=None,
        help="history store for the kind:scaling records (default "
        ".repro/history.jsonl; pass an empty string to skip)",
    )
    scale.add_argument(
        "--no-sample-resources",
        dest="sample_resources",
        action="store_false",
        help="disable the /proc resource sampler (loss attribution then "
        "has no resource-pressure component)",
    )
    scale.add_argument(
        "--sample-interval",
        type=float,
        default=0.05,
        help="resource-sampler period in seconds (default 0.05)",
    )
    scale.add_argument(
        "--top", type=int, default=10, help="summary rows to print"
    )
    scale.set_defaults(func=_cmd_scale, sample_resources=True)

    comp = sub.add_parser(
        "compare",
        help="regression-gate a candidate bench run against a baseline "
        "(exit 1 on hard regression)",
    )
    comp.add_argument(
        "candidate",
        help="candidate BENCH_forces.json or a directory containing it",
    )
    comp.add_argument(
        "--baseline",
        help="baseline bench JSON or directory (default: the committed "
        "./BENCH_forces.json, else the latest history-store entry)",
    )
    comp.add_argument(
        "--store",
        help="history store to fall back on for the baseline and to "
        "append the candidate to",
    )
    comp.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative median-slowdown gate (default 0.10 = 10%%)",
    )
    comp.add_argument(
        "--all-phases",
        action="store_true",
        help="gate every phase row, not just the total phase",
    )
    comp.add_argument(
        "--json", help="write the verdict report as JSON here"
    )
    comp.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI soft-fail)",
    )
    comp.set_defaults(func=_cmd_compare)

    rep = sub.add_parser(
        "report",
        help="render the self-contained HTML performance dashboard",
    )
    rep.add_argument(
        "source",
        help="artifact directory (BENCH_*.json / metrics.jsonl / "
        "run.jsonl) or a history store .jsonl file",
    )
    rep.add_argument(
        "-o", "--output", default="report.html", help="HTML output path"
    )
    rep.add_argument(
        "--store",
        help="explicit history store for the trend panel (default: "
        "history.jsonl or .repro/history.jsonl inside the source dir)",
    )
    rep.add_argument(
        "--top", type=int, default=8, help="rows per terminal summary section"
    )
    rep.set_defaults(func=_cmd_report)

    doctor = sub.add_parser(
        "doctor",
        help="self-check workload + diagnosis table (exit 1 on any "
        "critical finding)",
    )
    doctor.add_argument(
        "--case", default="tiny", help="case key for the check workload"
    )
    doctor.add_argument("--steps", type=int, default=3)
    doctor.add_argument(
        "--workers",
        type=int,
        default=2,
        help="process-pool size for the engine check",
    )
    doctor.add_argument(
        "--kernel-tier",
        choices=list(TIER_NAMES),
        default=None,
        help="tier to resolve in the kernel-tier check (an explicit "
        "numba variant that degrades is a critical finding)",
    )
    doctor.add_argument(
        "--inject",
        choices=["none", "tier-degradation", "worker-kill"],
        default="none",
        help="deliberately break one layer to prove the failure is "
        "visible (doctor must then exit 1)",
    )
    doctor.add_argument(
        "--output-dir",
        default=None,
        help="dump health.jsonl (the flight-recorder ring) here",
    )
    doctor.set_defaults(func=_cmd_doctor)

    health = sub.add_parser(
        "health",
        help="summarize a run's health.jsonl (exit 2 when missing)",
    )
    health.add_argument(
        "source",
        help="run directory containing health.jsonl, or the file itself",
    )
    health.add_argument(
        "--top", type=int, default=10, help="notable events to print"
    )
    health.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any warning-or-worse event was recorded",
    )
    health.set_defaults(func=_cmd_health)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
