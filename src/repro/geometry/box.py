"""Orthorhombic periodic simulation box.

The paper simulates bulk bcc iron "under periodic boundary conditions"; an
orthorhombic (rectangular) box with full periodicity in x, y, z is all the
workloads need.  The box owns the two geometric primitives everything else
builds on: coordinate wrapping and minimum-image displacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import check_shape


@dataclass(frozen=True)
class Box:
    """An axis-aligned periodic box ``[0, Lx) x [0, Ly) x [0, Lz)``.

    Attributes
    ----------
    lengths:
        edge lengths ``(Lx, Ly, Lz)`` in Å, all strictly positive.
    periodic:
        per-axis periodicity flags; the paper's systems are fully periodic
        but the engine supports open boundaries for the example scenarios
        (e.g. free surfaces in the micro-deformation example).
    """

    lengths: np.ndarray
    periodic: np.ndarray

    def __init__(
        self,
        lengths: Sequence[float],
        periodic: Sequence[bool] = (True, True, True),
    ) -> None:
        lengths_arr = np.asarray(lengths, dtype=np.float64)
        periodic_arr = np.asarray(periodic, dtype=bool)
        check_shape(lengths_arr, (3,), "lengths")
        check_shape(periodic_arr, (3,), "periodic")
        if np.any(lengths_arr <= 0):
            raise ValueError(f"box lengths must be positive, got {lengths_arr}")
        object.__setattr__(self, "lengths", lengths_arr)
        object.__setattr__(self, "periodic", periodic_arr)

    # --- derived geometry ---------------------------------------------------

    @property
    def volume(self) -> float:
        """Box volume in Å^3."""
        return float(np.prod(self.lengths))

    def min_length(self) -> float:
        """Shortest edge, the binding constraint for cutoffs and subdomains."""
        return float(np.min(self.lengths))

    # --- core primitives ------------------------------------------------------

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell along periodic axes.

        Non-periodic axes are left untouched.  Returns a new array.
        """
        positions = np.asarray(positions, dtype=np.float64)
        wrapped = positions.copy()
        for axis in range(3):
            if self.periodic[axis]:
                length = self.lengths[axis]
                component = wrapped[..., axis] % length
                # float modulo of a tiny negative value rounds to exactly
                # `length`; fold that onto 0 so wrap stays idempotent and
                # wrapped points satisfy 0 <= x < length
                wrapped[..., axis] = np.where(component >= length, 0.0, component)
        return wrapped

    def minimum_image(self, displacement: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors.

        For each periodic axis, folds components into ``[-L/2, L/2)``.
        Works on any ``(..., 3)`` array; returns a new array.
        """
        displacement = np.asarray(displacement, dtype=np.float64)
        out = displacement.copy()
        for axis in range(3):
            if self.periodic[axis]:
                length = self.lengths[axis]
                # floor-based fold maps into [-L/2, L/2) and, unlike
                # np.round's banker's rounding, resolves the exact-L/2 tie
                # the same way for every lattice image of a displacement
                out[..., axis] -= length * np.floor(
                    out[..., axis] / length + 0.5
                )
        return out

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distances between position arrays ``a`` and ``b``."""
        delta = self.minimum_image(np.asarray(a) - np.asarray(b))
        return np.sqrt(np.sum(delta * delta, axis=-1))

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask: is each position inside the primary cell?"""
        positions = np.asarray(positions, dtype=np.float64)
        inside = np.ones(positions.shape[:-1], dtype=bool)
        for axis in range(3):
            inside &= (positions[..., axis] >= 0.0) & (
                positions[..., axis] < self.lengths[axis]
            )
        return inside

    def max_cutoff(self) -> float:
        """Largest pair cutoff the minimum-image convention supports.

        A cutoff must be < L/2 along every periodic axis, otherwise an atom
        would interact with two images of the same neighbor.
        """
        limits = [
            self.lengths[axis] / 2.0 for axis in range(3) if self.periodic[axis]
        ]
        return min(limits) if limits else float("inf")

    def lattice_image_shifts(self, radius: int = 1) -> np.ndarray:
        """Lattice translation vectors ``n * L`` for ``|n_axis| <= radius``.

        Non-periodic axes only contribute ``n = 0``.  The zero shift is the
        first row; the rest follow in lexicographic ``n`` order, so callers
        can treat row 0 as "the primary image" deterministically.  This is
        the enumeration the sharded halo construction uses to find every
        periodic ghost image of an atom near a shard face.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        per_axis = [
            range(-radius, radius + 1) if self.periodic[axis] else (0,)
            for axis in range(3)
        ]
        images = np.array(
            [(nx, ny, nz) for nx in per_axis[0] for ny in per_axis[1] for nz in per_axis[2]],
            dtype=np.float64,
        )
        # put the zero image first, keep the rest in enumeration order
        zero = np.all(images == 0.0, axis=1)
        images = np.concatenate([images[zero], images[~zero]], axis=0)
        return images * self.lengths

    def scaled(self, factor: float) -> "Box":
        """Return a copy with all edges multiplied by ``factor`` (strain)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Box(self.lengths * factor, tuple(self.periodic))
