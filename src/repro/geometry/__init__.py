"""Simulation geometry: periodic boxes, crystal lattices, spatial regions."""

from repro.geometry.box import Box
from repro.geometry.lattice import (
    bcc_lattice,
    fcc_lattice,
    sc_lattice,
    perturb_positions,
)
from repro.geometry.region import BoxRegion, Region, SlabRegion, SphereRegion

__all__ = [
    "Box",
    "bcc_lattice",
    "fcc_lattice",
    "sc_lattice",
    "perturb_positions",
    "Region",
    "SphereRegion",
    "SlabRegion",
    "BoxRegion",
]
