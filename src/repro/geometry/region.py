"""Spatial region selections.

Example applications (micro-deformation of pure Fe, the paper's motivating
workload) need to address subsets of atoms geometrically: clamp a boundary
slab, displace a spherical indenter region, etc.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.box import Box


class Region(ABC):
    """A geometric predicate over positions."""

    @abstractmethod
    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        """Boolean mask of positions inside the region (minimum-image aware)."""

    def select(self, positions: np.ndarray, box: Box) -> np.ndarray:
        """Indices of atoms inside the region."""
        return np.flatnonzero(self.contains(positions, box))

    def __invert__(self) -> "Region":
        return _Complement(self)

    def __and__(self, other: "Region") -> "Region":
        return _Intersection(self, other)

    def __or__(self, other: "Region") -> "Region":
        return _Union(self, other)


@dataclass(frozen=True)
class SphereRegion(Region):
    """Atoms within ``radius`` of ``center`` (periodic distance)."""

    center: Sequence[float]
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"radius must be >= 0, got {self.radius}")

    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        center = np.asarray(self.center, dtype=np.float64)
        return box.distance(positions, center) <= self.radius


@dataclass(frozen=True)
class SlabRegion(Region):
    """Atoms whose coordinate along ``axis`` lies in ``[lo, hi)``."""

    axis: int
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {self.axis}")
        if self.hi < self.lo:
            raise ValueError(f"slab needs hi >= lo, got [{self.lo}, {self.hi})")

    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        coord = np.asarray(positions)[..., self.axis]
        return (coord >= self.lo) & (coord < self.hi)


@dataclass(frozen=True)
class BoxRegion(Region):
    """Axis-aligned sub-box ``[lo, hi)`` in all three axes."""

    lo: Sequence[float]
    hi: Sequence[float]

    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        positions = np.asarray(positions)
        mask = np.ones(positions.shape[:-1], dtype=bool)
        for axis in range(3):
            mask &= (positions[..., axis] >= lo[axis]) & (
                positions[..., axis] < hi[axis]
            )
        return mask


@dataclass(frozen=True)
class _Complement(Region):
    inner: Region

    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        return ~self.inner.contains(positions, box)


@dataclass(frozen=True)
class _Intersection(Region):
    left: Region
    right: Region

    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        return self.left.contains(positions, box) & self.right.contains(positions, box)


@dataclass(frozen=True)
class _Union(Region):
    left: Region
    right: Region

    def contains(self, positions: np.ndarray, box: Box) -> np.ndarray:
        return self.left.contains(positions, box) | self.right.contains(positions, box)
