"""Crystal lattice builders.

The paper's four test cases are bcc iron supercells: ``n x n x n``
conventional cells with 2 atoms per cell give exactly the published atom
counts (30^3*2 = 54 000, 51^3*2 = 265 302, 81^3*2 = 1 062 882,
120^3*2 = 3 456 000).  fcc and simple-cubic builders are included for the
example applications and for tests that need different neighbor-shell
structure.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.geometry.box import Box

#: Fractional basis of the conventional bcc cell (2 atoms).
BCC_BASIS = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])

#: Fractional basis of the conventional fcc cell (4 atoms).
FCC_BASIS = np.array(
    [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
)

#: Fractional basis of the simple cubic cell (1 atom).
SC_BASIS = np.array([[0.0, 0.0, 0.0]])


def _build(
    basis: np.ndarray, a: float, repeats: Sequence[int]
) -> Tuple[np.ndarray, Box]:
    repeats = tuple(int(r) for r in repeats)
    if len(repeats) != 3 or any(r <= 0 for r in repeats):
        raise ValueError(f"repeats must be three positive ints, got {repeats}")
    if a <= 0:
        raise ValueError(f"lattice constant must be positive, got {a}")
    nx, ny, nz = repeats
    # integer cell origins, shape (ncells, 3)
    grid = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    # broadcast basis over cells: (ncells, nbasis, 3) -> flat
    positions = (grid[:, None, :] + basis[None, :, :]).reshape(-1, 3) * a
    box = Box((nx * a, ny * a, nz * a))
    return np.ascontiguousarray(positions), box


def bcc_lattice(a: float, repeats: Sequence[int]) -> Tuple[np.ndarray, Box]:
    """Build a bcc supercell.

    Parameters
    ----------
    a:
        conventional lattice constant (Å).
    repeats:
        number of conventional cells along x, y, z.

    Returns
    -------
    (positions, box):
        positions as an ``(n_atoms, 3)`` float array inside ``box``.
    """
    return _build(BCC_BASIS, a, repeats)


def fcc_lattice(a: float, repeats: Sequence[int]) -> Tuple[np.ndarray, Box]:
    """Build an fcc supercell (4 atoms per conventional cell)."""
    return _build(FCC_BASIS, a, repeats)


def sc_lattice(a: float, repeats: Sequence[int]) -> Tuple[np.ndarray, Box]:
    """Build a simple-cubic supercell (1 atom per cell)."""
    return _build(SC_BASIS, a, repeats)


def bcc_atom_count(repeats: Sequence[int]) -> int:
    """Number of atoms a :func:`bcc_lattice` call would produce.

    Used by the harness to reason about the paper's large cases without
    materializing coordinates.
    """
    nx, ny, nz = (int(r) for r in repeats)
    return 2 * nx * ny * nz


def perturb_positions(
    positions: np.ndarray,
    box: Box,
    amplitude: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Displace every atom by uniform noise in ``[-amplitude, amplitude]^3``.

    A small perturbation off the perfect lattice gives non-zero forces so
    correctness tests exercise the full force path; positions are wrapped
    back into the box.
    """
    if amplitude < 0:
        raise ValueError(f"amplitude must be >= 0, got {amplitude}")
    noise = rng.uniform(-amplitude, amplitude, size=positions.shape)
    return box.wrap(positions + noise)


def _bcc_distances_within(a: float, reach: float) -> np.ndarray:
    """Sorted distances (with repeats) of all bcc sites within ``reach``."""
    span = int(np.ceil(reach / a)) + 1
    ints = np.arange(-span, span + 1)
    grid = np.stack(np.meshgrid(ints, ints, ints, indexing="ij"), axis=-1).reshape(
        -1, 3
    )
    both = np.concatenate([grid, grid + 0.5])  # corner + body-center sublattices
    dist = np.sqrt(np.sum(both * both, axis=1)) * a
    dist = dist[(dist > 1e-12) & (dist <= reach + 1e-9)]
    return np.sort(dist)


@lru_cache(maxsize=128)
def bcc_neighbor_shells(a: float, max_shells: int = 5) -> tuple[tuple[float, int], ...]:
    """Distances and multiplicities of the first bcc neighbor shells.

    Returns ``((distance, count), ...)``, e.g. the first shell of bcc is 8
    atoms at ``a*sqrt(3)/2`` and the second is 6 at ``a``.  Tests use this to
    validate neighbor-list counts analytically, and the harness uses it to
    predict pair-work for the paper's multi-million-atom cases.
    """
    if max_shells < 1:
        raise ValueError("max_shells must be >= 1")
    # shell distances grow roughly like sqrt(k) * a / 2; overshoot the reach
    # and trim to the requested count
    reach = a * (1.0 + np.sqrt(max_shells))
    dist = _bcc_distances_within(a, reach)
    values, counts = np.unique(np.round(dist, 9), return_counts=True)
    if len(values) < max_shells:  # pragma: no cover - defensive overshoot
        dist = _bcc_distances_within(a, 2.0 * reach)
        values, counts = np.unique(np.round(dist, 9), return_counts=True)
    return tuple(
        (float(d), int(c)) for d, c in zip(values[:max_shells], counts[:max_shells])
    )


@lru_cache(maxsize=1024)
def neighbors_within_cutoff_bcc(a: float, cutoff: float) -> int:
    """Analytic bcc coordination number within ``cutoff``.

    Counts lattice sites at distance ``<= cutoff`` from an atom; this is
    the exact per-atom neighbor count of a perfect periodic bcc crystal
    (provided the box is large enough for minimum image).
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    return int(len(_bcc_distances_within(a, cutoff)))
