"""Color-phase scheduling — step 3 of the SDC method.

For each color in turn, the subdomains of that color form one parallel
phase: an OpenMP ``for`` loop whose iterations are distributed among
threads with static scheduling, terminated by the loop's implicit barrier.
This module builds those phases and computes the load-balance numbers the
paper's discussion section reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.coloring import Coloring


def static_assignment(n_items: int, n_threads: int) -> List[np.ndarray]:
    """OpenMP static schedule: near-equal contiguous chunks per thread.

    Matches ``#pragma omp for schedule(static)``: the first
    ``n_items % n_threads`` threads receive one extra iteration.  Threads
    beyond ``n_items`` receive empty chunks (the idle-core situation of 1-D
    SDC on the small case).
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    base = n_items // n_threads
    extra = n_items % n_threads
    chunks: List[np.ndarray] = []
    start = 0
    for t in range(n_threads):
        size = base + (1 if t < extra else 0)
        chunks.append(np.arange(start, start + size, dtype=np.int64))
        start += size
    return chunks


@dataclass(frozen=True)
class ColorSchedule:
    """Execution order for one force phase under SDC.

    Attributes
    ----------
    phases:
        one array of subdomain ids per color, executed serially in color
        order; within a phase the subdomains run in parallel.
    """

    coloring: Coloring
    phases: List[np.ndarray]

    @property
    def n_colors(self) -> int:
        """Number of serial color phases."""
        return len(self.phases)

    def thread_assignment(
        self, color: int, n_threads: int
    ) -> List[np.ndarray]:
        """Subdomain ids per thread for one color phase (static schedule)."""
        members = self.phases[color]
        chunks = static_assignment(len(members), n_threads)
        return [members[chunk] for chunk in chunks]

    def max_parallelism(self) -> int:
        """Largest thread count any phase can keep busy."""
        return max((len(p) for p in self.phases), default=0)

    def min_parallelism(self) -> int:
        """Smallest per-phase subdomain count (the binding constraint)."""
        return min((len(p) for p in self.phases), default=0)


def build_schedule(coloring: Coloring) -> ColorSchedule:
    """Group subdomains into per-color phases, ascending ids within each."""
    phases = [coloring.members(c) for c in range(coloring.n_colors)]
    return ColorSchedule(coloring=coloring, phases=phases)


def phase_makespan(work: np.ndarray, n_threads: int) -> float:
    """Simulated makespan of one parallel phase under static scheduling.

    ``work[k]`` is the cost of the phase's ``k``-th subdomain; the phase
    finishes when its slowest thread finishes.  This is where SDC's load
    imbalance (the paper's acknowledged disadvantage) enters the model.
    """
    work = np.asarray(work, dtype=np.float64)
    if np.any(work < 0):
        raise ValueError("work must be non-negative")
    chunks = static_assignment(len(work), n_threads)
    if not len(work):
        return 0.0
    return max(float(work[chunk].sum()) for chunk in chunks)


def load_imbalance(work: np.ndarray, n_threads: int) -> float:
    """Makespan / ideal ratio (1.0 = perfectly balanced).

    Ideal is ``sum(work) / n_threads``; returns ``inf`` when there is work
    but the makespan-bearing thread count exceeds the subdomain count so
    much that some threads idle an entire phase.
    """
    work = np.asarray(work, dtype=np.float64)
    total = float(work.sum())
    if total == 0.0:
        return 1.0
    ideal = total / n_threads
    return phase_makespan(work, n_threads) / ideal
