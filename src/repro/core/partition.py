"""Atom and pair partitions over a subdomain grid.

The paper's parallel kernels (Figs. 7-8) iterate subdomain atoms through a
CSR pair of arrays: ``for ipart in pstart[spart] .. pstart[spart+1]:
i = partindex[ipart]``.  :class:`Partition` is that structure;
:class:`PairPartition` extends it to the flat neighbor-pair slots so a
strategy can grab "all half-list pairs owned by subdomain s" as one
contiguous slice — the unit of parallel work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.domain import SubdomainGrid
from repro.md.neighbor.verlet import NeighborList
from repro.utils.arrays import CSR


@dataclass(frozen=True)
class Partition:
    """Atoms grouped by subdomain.

    ``csr.offsets`` is the paper's ``pstart``; ``csr.values`` its
    ``partindex``.
    """

    grid: SubdomainGrid
    csr: CSR
    subdomain_of_atom: np.ndarray

    @property
    def n_atoms(self) -> int:
        """Number of partitioned atoms."""
        return len(self.subdomain_of_atom)

    def atoms_of(self, subdomain: int) -> np.ndarray:
        """Atom indices owned by ``subdomain`` (ascending)."""
        return self.csr.row(subdomain)

    def counts(self) -> np.ndarray:
        """Atoms per subdomain."""
        return self.csr.row_lengths()


def build_partition(positions: np.ndarray, grid: SubdomainGrid) -> Partition:
    """Assign each atom to the subdomain containing its wrapped position."""
    subdomain_of_atom = grid.subdomain_of_positions(positions)
    order = np.argsort(subdomain_of_atom, kind="stable")
    counts = np.bincount(subdomain_of_atom, minlength=grid.n_subdomains)
    offsets = np.zeros(grid.n_subdomains + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return Partition(
        grid=grid,
        csr=CSR(offsets=offsets, values=order.astype(np.int64)),
        subdomain_of_atom=subdomain_of_atom,
    )


@dataclass(frozen=True)
class PairPartition:
    """Half-list pair slots grouped by the owning atom's subdomain.

    Attributes
    ----------
    i_idx, j_idx:
        pair endpoint arrays *already permuted* into subdomain-contiguous
        order; the pairs of subdomain ``s`` are
        ``i_idx[offsets[s]:offsets[s+1]]`` (ditto ``j_idx``).
    offsets:
        CSR offsets over subdomains.
    pair_perm:
        the permutation from the neighbor list's flat slot order into the
        grouped order (kept for instrumentation/round-trips).
    """

    partition: Partition
    i_idx: np.ndarray
    j_idx: np.ndarray
    offsets: np.ndarray
    pair_perm: np.ndarray

    @property
    def n_pairs(self) -> int:
        """Total number of grouped pairs."""
        return len(self.i_idx)

    def pairs_of(self, subdomain: int) -> tuple[np.ndarray, np.ndarray]:
        """``(i, j)`` views of the pairs owned by ``subdomain``."""
        lo, hi = self.offsets[subdomain], self.offsets[subdomain + 1]
        return self.i_idx[lo:hi], self.j_idx[lo:hi]

    def pair_counts(self) -> np.ndarray:
        """Pairs per subdomain — the load-balance weight for scheduling."""
        return np.diff(self.offsets)

    def write_set(self, subdomain: int) -> np.ndarray:
        """All atom indices subdomain ``s`` updates in the scatter phases.

        Union of its own atoms and the ``j`` side of its pairs — the set the
        SDC conflict-freedom argument is about.
        """
        i, j = self.pairs_of(subdomain)
        own = self.partition.atoms_of(subdomain)
        return np.unique(np.concatenate([own, i, j]))


def build_pair_partition(
    partition: Partition, nlist: NeighborList
) -> PairPartition:
    """Group a neighbor list's pairs by owning subdomain.

    A pair is *owned* by the subdomain of its row atom ``i`` — matching the
    paper's kernels, where the outer loop runs over a subdomain's atoms and
    the inner loop over their neighbor rows.
    """
    if partition.n_atoms != nlist.n_atoms:
        raise ValueError(
            f"partition covers {partition.n_atoms} atoms, list has "
            f"{nlist.n_atoms}"
        )
    i_idx, j_idx = nlist.pair_arrays()
    pair_sub = partition.subdomain_of_atom[i_idx]
    pair_perm = np.argsort(pair_sub, kind="stable")
    counts = np.bincount(pair_sub, minlength=partition.grid.n_subdomains)
    offsets = np.zeros(partition.grid.n_subdomains + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return PairPartition(
        partition=partition,
        i_idx=np.ascontiguousarray(i_idx[pair_perm]),
        j_idx=np.ascontiguousarray(j_idx[pair_perm]),
        offsets=offsets,
        pair_perm=pair_perm,
    )
