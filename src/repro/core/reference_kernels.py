"""Literal transcriptions of the paper's pseudocode (Figs. 1, 2, 7, 8).

The vectorized kernels in :mod:`repro.potentials.eam` and
:mod:`repro.core.strategies.sdc` are what the library runs; these
plain-Python nested loops are what the *paper prints*.  Keeping both, and
testing them equal, anchors the reproduction to the paper's exact data
layout and iteration structure:

* Figs. 1-2 — the serial electron-density and force loops over
  ``neighindex`` / ``neighlen`` / ``neighlist``;
* Figs. 7-8 — the SDC parallel loops: the color loop outside, the
  ``spart`` worksharing loop inside (stepping through the subdomains of
  one color), atoms via ``pstart`` / ``partindex``.

They run at interpreter speed and exist for validation and pedagogy only.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.partition import PairPartition
from repro.core.schedule import ColorSchedule
from repro.geometry.box import Box
from repro.md.neighbor.verlet import NeighborList
from repro.potentials.base import EAMPotential


def _pair_distance(
    positions: np.ndarray, box: Box, i: int, j: int
) -> tuple[np.ndarray, float]:
    delta = box.minimum_image(positions[i] - positions[j])
    return delta, float(np.sqrt(np.dot(delta, delta)))


def fig1_density_loop(
    potential: EAMPotential,
    positions: np.ndarray,
    box: Box,
    nlist: NeighborList,
) -> np.ndarray:
    """Fig. 1: the serial electron-density loop, verbatim structure.

    ``for i in atoms: for k in neighstart..neighend: j = neighlist[k];
    rho[i] += phi; rho[j] += phi`` — including the paper's Section II.D
    optimization of charging both endpoints from one phi evaluation.
    """
    n = len(positions)
    neighindex = nlist.csr.offsets
    neighlen = nlist.csr.row_lengths()
    neighlist = nlist.csr.values
    rho = np.zeros(n)
    for i in range(n):
        neighstart = neighindex[i]
        neighend = neighstart + neighlen[i]
        for k in range(neighstart, neighend):
            j = int(neighlist[k])
            _, r = _pair_distance(positions, box, i, j)
            phi = float(potential.density(np.array([r]))[0])
            rho[i] += phi
            rho[j] += phi
    return rho


def fig2_force_loop(
    potential: EAMPotential,
    positions: np.ndarray,
    box: Box,
    nlist: NeighborList,
    fp: np.ndarray,
) -> np.ndarray:
    """Fig. 2: the serial force loop, verbatim structure.

    One scalar ``forc`` per pair scales the separation components; the
    paper's six scatter updates (``force[i][X] += ...; force[j][X] -= ...``)
    become the two vector updates here.
    """
    n = len(positions)
    neighindex = nlist.csr.offsets
    neighlen = nlist.csr.row_lengths()
    neighlist = nlist.csr.values
    force = np.zeros((n, 3))
    for i in range(n):
        neighstart = neighindex[i]
        neighend = neighstart + neighlen[i]
        for k in range(neighstart, neighend):
            j = int(neighlist[k])
            delta, r = _pair_distance(positions, box, i, j)
            vp = float(potential.pair_energy_deriv(np.array([r]))[0])
            dp = float(potential.density_deriv(np.array([r]))[0])
            forc = -(vp + (fp[i] + fp[j]) * dp) / r
            force[i] += forc * delta
            force[j] -= forc * delta
    return force


def _subdomains_of_color(
    schedule: ColorSchedule, cpart: int
) -> Sequence[int]:
    """The paper iterates ``spart = cpart; spart < subdomains; spart += colors``
    assuming a color-interleaved flat ordering; our schedule stores the
    color classes explicitly, which is the same set of subdomains."""
    return [int(s) for s in schedule.phases[cpart]]


def fig7_sdc_density(
    potential: EAMPotential,
    positions: np.ndarray,
    box: Box,
    pairs: PairPartition,
    schedule: ColorSchedule,
) -> np.ndarray:
    """Fig. 7: the SDC-parallel density computation, verbatim structure.

    Outer loop over colors (serial); inner loop over that color's
    subdomains (the ``#pragma omp for`` — any execution order is legal
    because write sets are disjoint); innermost the paper's
    ``pstart``/``partindex`` atom loop and neighbor loop.
    """
    n = len(positions)
    pstart = pairs.partition.csr.offsets
    partindex = pairs.partition.csr.values
    rho = np.zeros(n)
    # reconstruct per-atom CSR access through the grouped pair arrays
    for cpart in range(schedule.n_colors):
        for spart in _subdomains_of_color(schedule, cpart):
            for ipart in range(pstart[spart], pstart[spart + 1]):
                i = int(partindex[ipart])
                lo, hi = pairs.offsets[spart], pairs.offsets[spart + 1]
                row_mask = pairs.i_idx[lo:hi] == i
                for j in pairs.j_idx[lo:hi][row_mask]:
                    _, r = _pair_distance(positions, box, i, int(j))
                    phi = float(potential.density(np.array([r]))[0])
                    rho[i] += phi
                    rho[int(j)] += phi
    return rho


def fig8_sdc_force(
    potential: EAMPotential,
    positions: np.ndarray,
    box: Box,
    pairs: PairPartition,
    schedule: ColorSchedule,
    fp: np.ndarray,
) -> np.ndarray:
    """Fig. 8: the SDC-parallel force computation, verbatim structure."""
    n = len(positions)
    pstart = pairs.partition.csr.offsets
    partindex = pairs.partition.csr.values
    force = np.zeros((n, 3))
    for cpart in range(schedule.n_colors):
        for spart in _subdomains_of_color(schedule, cpart):
            for ipart in range(pstart[spart], pstart[spart + 1]):
                i = int(partindex[ipart])
                lo, hi = pairs.offsets[spart], pairs.offsets[spart + 1]
                row_mask = pairs.i_idx[lo:hi] == i
                for j in pairs.j_idx[lo:hi][row_mask]:
                    j = int(j)
                    delta, r = _pair_distance(positions, box, i, j)
                    vp = float(potential.pair_energy_deriv(np.array([r]))[0])
                    dp = float(potential.density_deriv(np.array([r]))[0])
                    forc = -(vp + (fp[i] + fp[j]) * dp) / r
                    force[i] += forc * delta
                    force[j] -= forc * delta
    return force
