"""Data-reordering optimizations (paper Section II.D).

Three transformations the paper applies to both the serial and parallel
codes:

1. **Spatial atom sort** — atoms are renumbered in cell order, so the
   irregular accesses ``rho[j]`` / ``force[j]`` of nearby atoms land on
   nearby addresses.
2. **Neighbor-row sort** — the ``j`` entries of each row are stored in
   ascending order, turning the inner-loop gather into an almost-sequential
   stream.
3. **CSR regularization** — ``neighindex``/``neighlen`` become dense arrays
   indexed directly by the loop counter (our CSR offsets already are; the
   function exists so un-regularized inputs can be normalized and so the
   locality metric can quantify the difference).

The measured effect in the paper: 12 % faster serial, 39 % faster parallel
on the large case (Eq. 3).  Here the effect is captured by
:func:`locality_score`, which feeds the simulated machine's cache penalty.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.box import Box
from repro.md.neighbor.cells import build_cell_list
from repro.md.neighbor.verlet import NeighborList
from repro.utils.arrays import CSR, invert_permutation


def spatial_sort_permutation(
    positions: np.ndarray, box: Box, cell_size: float
) -> np.ndarray:
    """Permutation that orders atoms by cell id (stable within a cell).

    Applying it with :meth:`repro.md.atoms.Atoms.reorder` gives new index
    ``k`` to the atom previously at ``perm[k]``.
    """
    cells = build_cell_list(positions, box, cell_size)
    return cells.order.copy()


def reorder_atoms_spatially(
    atoms: "object", cell_size: float
) -> np.ndarray:
    """Spatially sort an :class:`~repro.md.atoms.Atoms` object in place.

    Returns the applied permutation so callers can remap any neighbor list
    built against the old ordering (:func:`remap_neighbor_list`).
    """
    perm = spatial_sort_permutation(atoms.positions, atoms.box, cell_size)
    atoms.reorder(perm)
    return perm


def remap_neighbor_list(nlist: NeighborList, perm: np.ndarray) -> NeighborList:
    """Rewrite a neighbor list for atoms renumbered by ``perm``.

    ``perm`` is the permutation passed to ``Atoms.reorder`` (new index k was
    old ``perm[k]``).  Rows are permuted, ``j`` values remapped through the
    inverse permutation, and the half-list ``i < j`` orientation restored by
    flipping pairs the renumbering inverted.
    """
    inv = invert_permutation(perm)
    old_i, old_j = nlist.pair_arrays()
    new_i = inv[old_i]
    new_j = inv[old_j]
    if nlist.half:
        flip = new_i > new_j
        new_i[flip], new_j[flip] = new_j[flip], new_i[flip]
    order = np.lexsort((new_j, new_i))
    new_i, new_j = new_i[order], new_j[order]
    lengths = np.bincount(new_i, minlength=nlist.n_atoms)
    offsets = np.zeros(nlist.n_atoms + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return NeighborList(
        csr=CSR(offsets=offsets, values=new_j),
        cutoff=nlist.cutoff,
        skin=nlist.skin,
        half=nlist.half,
        reference_positions=nlist.reference_positions[perm],
        box=nlist.box,
    )


def sort_neighbor_rows(nlist: NeighborList) -> NeighborList:
    """Sort each row's ``j`` entries ascending (paper optimization II.D-1).

    The builders in this library already emit sorted rows; this exists to
    normalize externally-constructed lists and to undo deliberate shuffling
    in locality experiments.
    """
    values = nlist.csr.values.copy()
    offsets = nlist.csr.offsets
    for r in range(nlist.n_atoms):
        lo, hi = offsets[r], offsets[r + 1]
        values[lo:hi] = np.sort(values[lo:hi])
    return NeighborList(
        csr=CSR(offsets=offsets.copy(), values=values),
        cutoff=nlist.cutoff,
        skin=nlist.skin,
        half=nlist.half,
        reference_positions=nlist.reference_positions,
        box=nlist.box,
    )


def shuffle_neighbor_structure(
    nlist: NeighborList, rng: np.random.Generator
) -> Tuple[NeighborList, np.ndarray]:
    """Deliberately destroy locality (the *un*-optimized baseline).

    Renumbers atoms with a random permutation — the memory layout a naive
    input file ordering produces.  Returns the degraded list and the
    permutation used (so tests can restore order).
    """
    perm = rng.permutation(nlist.n_atoms)
    return remap_neighbor_list(nlist, perm), perm


def regularize_csr(nlist: NeighborList) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``(neighindex, neighlen)`` arrays for a neighbor list.

    Paper optimization II.D-2: the per-atom index/length metadata is stored
    as two flat arrays scanned sequentially by the outer loop, instead of
    being scattered behind a pointer per atom.
    """
    neighindex = nlist.csr.offsets[:-1].copy()
    neighlen = nlist.csr.row_lengths().copy()
    return neighindex, neighlen


def locality_score(
    nlist: NeighborList,
    line_atoms: int = 8,
    window_lines: int = 512,
) -> float:
    """Cache-friendliness of a neighbor list's access stream, in ``(0, 1]``.

    Models the gather/scatter stream ``rho[j]`` of the density kernel: the
    stream of ``j // line_atoms`` cache lines is split into windows of the
    cache's capacity (``window_lines`` lines); the score is the fraction of
    accesses per window that hit an already-touched line.  A perfectly
    sorted bcc system scores near 1; a randomly renumbered one approaches
    the compulsory-miss floor.

    The simulated machine multiplies its memory-penalty term by
    ``(1 - score)``, which is how the Section II.D reordering shows up in
    reproduced timings.
    """
    if line_atoms < 1 or window_lines < 1:
        raise ValueError("line_atoms and window_lines must be >= 1")
    _, j_idx = nlist.pair_arrays()
    if len(j_idx) == 0:
        return 1.0
    lines = j_idx // line_atoms
    window = window_lines * 4  # accesses per window (several per line expected)
    n = len(lines)
    misses = 0
    for start in range(0, n, window):
        chunk = lines[start : start + window]
        distinct = len(np.unique(chunk))
        misses += min(distinct, window_lines) + max(distinct - window_lines, 0)
    hit_fraction = 1.0 - misses / n
    return float(max(hit_fraction, 1e-6))
