"""Subdomain coloring — step 2 of the SDC method.

Section II.B: *"subdomains are colored with a set of different colors in
such a way that each subdomain is surrounded only by those subdomains with
different colors. And the number of subdomains with each color is equal."*

For the regular grids SDC builds, the parity (red-black style) coloring
needs exactly ``2^d`` colors for a ``d``-dimensional decomposition — the
paper's 2 (1-D), 4 (2-D) and 8 (3-D).  A general greedy graph coloring is
also provided for irregular decompositions (an extension beyond the paper,
useful for non-uniform densities) and for cross-validating the lattice
coloring against the adjacency structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from repro.core.domain import SubdomainGrid


@dataclass(frozen=True)
class Coloring:
    """An assignment of colors to subdomains.

    Attributes
    ----------
    color_of:
        ``int64`` array, ``color_of[s]`` in ``[0, n_colors)``.
    n_colors:
        number of distinct colors.
    """

    color_of: np.ndarray
    n_colors: int

    def __post_init__(self) -> None:
        color_of = np.ascontiguousarray(self.color_of, dtype=np.int64)
        if color_of.ndim != 1:
            raise ValueError("color_of must be 1-D")
        if self.n_colors < 1:
            raise ValueError("n_colors must be >= 1")
        if len(color_of) and (color_of.min() < 0 or color_of.max() >= self.n_colors):
            raise ValueError("colors out of range")
        object.__setattr__(self, "color_of", color_of)

    @property
    def n_subdomains(self) -> int:
        """Number of colored subdomains."""
        return len(self.color_of)

    def members(self, color: int) -> np.ndarray:
        """Subdomain ids holding ``color``."""
        return np.flatnonzero(self.color_of == color)

    def class_sizes(self) -> np.ndarray:
        """Number of subdomains per color."""
        return np.bincount(self.color_of, minlength=self.n_colors)

    def is_balanced(self) -> bool:
        """The paper requires equal class sizes; true when that holds."""
        sizes = self.class_sizes()
        return bool(np.all(sizes == sizes[0]))


def lattice_coloring(grid: SubdomainGrid) -> Coloring:
    """Parity coloring of a subdomain grid: ``2^d`` colors.

    The color of subdomain ``(sx, sy, sz)`` packs the parity bit of each
    *decomposed* axis; with even per-axis counts the coloring is proper
    under periodic wrap-around and the classes are exactly equal in size.
    """
    ids = np.arange(grid.n_subdomains, dtype=np.int64)
    coords = grid.coords_of(ids)
    color = np.zeros(grid.n_subdomains, dtype=np.int64)
    bit = 0
    for axis in grid.decomposed_axes:
        color |= (coords[:, axis] % 2) << bit
        bit += 1
    return Coloring(color_of=color, n_colors=grid.n_colors)


def greedy_coloring(adjacency: Sequence[tuple[int, int]], n_nodes: int) -> Coloring:
    """Greedy graph coloring of an arbitrary subdomain adjacency.

    Uses networkx's largest-first greedy heuristic.  Not guaranteed
    balanced (the lattice coloring is preferred on grids); exposed for
    irregular decompositions and as an oracle in tests.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_edges_from(adjacency)
    result = nx.coloring.greedy_color(graph, strategy="largest_first")
    color_of = np.array([result[node] for node in range(n_nodes)], dtype=np.int64)
    n_colors = int(color_of.max()) + 1 if n_nodes else 1
    return Coloring(color_of=color_of, n_colors=n_colors)


def validate_coloring(grid: SubdomainGrid, coloring: Coloring) -> None:
    """Raise :class:`ValueError` if any adjacent subdomains share a color.

    Adjacency is the wrapped 27-stencil of the grid — exactly the subdomain
    pairs whose write regions can overlap when edges exceed ``2 * reach``.
    """
    if coloring.n_subdomains != grid.n_subdomains:
        raise ValueError(
            f"coloring covers {coloring.n_subdomains} subdomains, grid has "
            f"{grid.n_subdomains}"
        )
    for s, t in grid.adjacency_pairs():
        if coloring.color_of[s] == coloring.color_of[t]:
            raise ValueError(
                f"adjacent subdomains {s} and {t} share color "
                f"{coloring.color_of[s]}"
            )
