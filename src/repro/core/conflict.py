"""Write-conflict instrumentation.

SDC's correctness rests on one claim: within a color phase, the write sets
of concurrently-executing subdomains are pairwise disjoint ("Because the
data spaces updated by threads do not overlap, we don't need
synchronization").  This module *checks* that claim for any schedule, so
tests can prove it holds whenever the decomposition constraints are
respected — and prove the checker catches violations when they are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.partition import PairPartition
from repro.core.schedule import ColorSchedule


@dataclass(frozen=True)
class ConflictReport:
    """Outcome of a conflict scan.

    Attributes
    ----------
    conflicts:
        up to ``max_reported`` tuples ``(color, subdomain_a, subdomain_b,
        atom)`` where both subdomains of the same color write ``atom``.
    n_conflicting_atoms:
        total count of atoms written by more than one same-color subdomain.
    """

    conflicts: List[Tuple[int, int, int, int]] = field(default_factory=list)
    n_conflicting_atoms: int = 0

    @property
    def ok(self) -> bool:
        """True when the schedule is race-free."""
        return self.n_conflicting_atoms == 0


def check_schedule_conflicts(
    pairs: PairPartition,
    schedule: ColorSchedule,
    max_reported: int = 16,
) -> ConflictReport:
    """Scan every color phase for overlapping subdomain write sets.

    For each phase, the write set of every member subdomain (its own atoms
    plus every ``j`` it scatters into) is collected; any atom claimed by two
    different subdomains of the same color is a data race the paper's
    method promises cannot happen.
    """
    conflicts: List[Tuple[int, int, int, int]] = []
    n_conflicting = 0
    for color, members in enumerate(schedule.phases):
        if len(members) < 2:
            continue
        atoms_list = []
        owner_list = []
        for s in members:
            ws = pairs.write_set(int(s))
            atoms_list.append(ws)
            owner_list.append(np.full(len(ws), s, dtype=np.int64))
        atoms = np.concatenate(atoms_list)
        owners = np.concatenate(owner_list)
        order = np.argsort(atoms, kind="stable")
        atoms = atoms[order]
        owners = owners[order]
        dup = atoms[1:] == atoms[:-1]
        # write sets are per-subdomain unique, so equal adjacent atoms imply
        # distinct owners
        positions = np.flatnonzero(dup)
        n_conflicting += len(positions)
        for p in positions:
            if len(conflicts) >= max_reported:
                break
            conflicts.append(
                (color, int(owners[p]), int(owners[p + 1]), int(atoms[p]))
            )
    return ConflictReport(conflicts=conflicts, n_conflicting_atoms=n_conflicting)


def thread_write_sets(
    pairs: PairPartition,
    schedule: ColorSchedule,
    color: int,
    n_threads: int,
) -> List[np.ndarray]:
    """Per-thread union of write sets for one phase (debugging/analysis)."""
    assignment = schedule.thread_assignment(color, n_threads)
    out: List[np.ndarray] = []
    for subdomains in assignment:
        if len(subdomains) == 0:
            out.append(np.empty(0, dtype=np.int64))
            continue
        sets = [pairs.write_set(int(s)) for s in subdomains]
        out.append(np.unique(np.concatenate(sets)))
    return out
