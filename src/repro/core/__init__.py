"""The paper's contribution: Spatial Decomposition Coloring (SDC).

Subpackages/modules:

* :mod:`repro.core.domain` — subdomain grids with the ``> 2 r_c`` edge and
  even-count constraints (paper Section II.B step 1).
* :mod:`repro.core.coloring` — 2/4/8-color assignment and validation
  (step 2).
* :mod:`repro.core.partition` — atom and pair partitions in the paper's
  ``pstart``/``partindex`` layout.
* :mod:`repro.core.schedule` — color-phase schedules and OpenMP-style
  static thread assignment (step 3).
* :mod:`repro.core.strategies` — SDC plus the competing reduction
  strategies (CS, SAP, RC, atomic) the paper evaluates against.
* :mod:`repro.core.reorder` — the Section II.D data-reordering
  optimizations.
* :mod:`repro.core.conflict` — write-set instrumentation proving (or
  refuting) conflict-freedom of a schedule.
"""

from repro.core.coloring import Coloring, greedy_coloring, lattice_coloring
from repro.core.conflict import ConflictReport, check_schedule_conflicts
from repro.core.domain import DecompositionError, SubdomainGrid, decompose
from repro.core.partition import PairPartition, Partition, build_partition
from repro.core.reorder import (
    locality_score,
    regularize_csr,
    reorder_atoms_spatially,
    sort_neighbor_rows,
)
from repro.core.schedule import ColorSchedule, static_assignment

__all__ = [
    "Coloring",
    "greedy_coloring",
    "lattice_coloring",
    "ConflictReport",
    "check_schedule_conflicts",
    "DecompositionError",
    "SubdomainGrid",
    "decompose",
    "PairPartition",
    "Partition",
    "build_partition",
    "locality_score",
    "regularize_csr",
    "reorder_atoms_spatially",
    "sort_neighbor_rows",
    "ColorSchedule",
    "static_assignment",
]
