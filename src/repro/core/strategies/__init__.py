"""Parallel reduction strategies for the EAM force computation.

One class per approach the paper evaluates (Section I's taxonomy +
Section III's measured methods):

* :class:`SerialStrategy` — the optimized serial baseline.
* :class:`SDCStrategy` — Spatial Decomposition Coloring (the paper's
  contribution), in 1-D, 2-D and 3-D variants.
* :class:`CriticalSectionStrategy` — CS: every conflicting scatter guarded
  by a critical section.
* :class:`ArrayPrivatizationStrategy` — SAP: per-thread private reduction
  arrays merged at the end.
* :class:`RedundantComputationStrategy` — RC: full neighbor lists, owned
  writes only, doubled pair work.
* :class:`AtomicStrategy` — hardware atomic updates (the taxonomy's
  lock-free cousin of CS; an extension beyond the measured set).

Every strategy computes *identical physics* (asserted by the test suite)
and exposes a :meth:`~ReductionStrategy.plan` describing its execution to
the simulated machine.
"""

from repro.core.strategies.atomic import AtomicStrategy
from repro.core.strategies.base import ReductionStrategy
from repro.core.strategies.localwrite import LocalWriteStrategy
from repro.core.strategies.pairwise import SDCPairCalculator, SerialPairCalculator
from repro.core.strategies.critical_section import CriticalSectionStrategy
from repro.core.strategies.privatization import ArrayPrivatizationStrategy
from repro.core.strategies.redundant import RedundantComputationStrategy
from repro.core.strategies.sdc import SDCStrategy
from repro.core.strategies.serial import SerialStrategy

STRATEGY_REGISTRY = {
    cls.name: cls
    for cls in (
        SerialStrategy,
        SDCStrategy,
        CriticalSectionStrategy,
        ArrayPrivatizationStrategy,
        RedundantComputationStrategy,
        AtomicStrategy,
        LocalWriteStrategy,
    )
}

__all__ = [
    "ReductionStrategy",
    "SerialStrategy",
    "SDCStrategy",
    "CriticalSectionStrategy",
    "ArrayPrivatizationStrategy",
    "RedundantComputationStrategy",
    "AtomicStrategy",
    "LocalWriteStrategy",
    "SDCPairCalculator",
    "SerialPairCalculator",
    "STRATEGY_REGISTRY",
]
