"""Spatial Decomposition Coloring — the paper's method (Section II.B-C).

Execution structure per force evaluation (paper Figs. 7-8):

* **density region**: for each color, all subdomains of that color run in
  parallel; each subdomain task evaluates phi over its owned half-list
  pairs and scatters into both endpoints.  No locks — same-color write
  sets are disjoint by construction.  Implicit barrier between colors.
* **embedding region**: a plain parallel-for over atoms (no dependences).
* **force region**: same color structure with the Eq. 2 scatter.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.coloring import lattice_coloring, validate_coloring
from repro.core.conflict import check_schedule_conflicts
from repro.core.domain import SubdomainGrid, decompose, decompose_balanced
from repro.core.partition import (
    PairPartition,
    build_pair_partition,
    build_partition,
)
from repro.core.schedule import ColorSchedule, build_schedule
from repro.core.strategies.base import ReductionStrategy, atom_chunks
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPhase, SimPlan, uniform_phase
from repro.parallel.workload import BYTES_PER_ATOM, WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    EAMComputation,
    density_pair_values,
    force_pair_coefficients,
    pair_geometry,
    scatter_force_half,
    scatter_rho_half,
)


def _count_health(name: str) -> None:
    """Bump a named health counter (never raises)."""
    try:
        from repro.obs.recorder import count

        count(name)
    except Exception:  # pragma: no cover - telemetry stays optional
        pass


class SDCStrategy(ReductionStrategy):
    """The Spatial Decomposition Coloring strategy.

    Parameters
    ----------
    dims:
        1, 2 or 3 — the decomposition dimensionality (2 is the paper's
        best performer).
    n_threads:
        thread count used for the embedding chunking, for balanced
        decomposition selection, and as the default plan width.
    backend:
        how task closures execute (:class:`SerialBackend` by default;
        :class:`~repro.parallel.backends.threads.ThreadBackend` for real
        concurrency).
    adaptive:
        choose per-axis subdomain counts that divide evenly over
        ``n_threads`` (the paper's load-balance discussion); when False the
        constraint-maximal counts are used.
    validate_conflicts:
        run the conflict checker on every new decomposition and raise if a
        same-color write overlap exists (a correctness tripwire; cheap
        relative to forces, but off by default).
    schedule_transform:
        optional hook applied to the freshly built :class:`ColorSchedule`
        before execution.  Exists for fault injection — racecheck tests
        corrupt valid schedules (merge colors, drop barriers) and assert
        the dynamic detector catches the resulting races.
    grid_factory:
        optional ``(box, reach) -> SubdomainGrid`` override of the
        decomposition, the second fault-injection hook (e.g. subdomain
        edges below ``2 * reach``).
    fused:
        color-phase fusion control.  ``None`` (default) fuses each color
        into one kernel-tier call whenever the active tier advertises
        :meth:`~repro.kernels.KernelTier.fused_color_phases` for the
        potential (the numba variants with a lowerable potential) — the
        cell-blocked pair traversal then runs entirely inside compiled
        code, with ``numba-parallel`` ``prange``-ing over the color's
        subdomains.  ``False`` always uses per-subdomain tasks;
        ``True`` forces fusion even on tiers whose generic driver just
        re-composes the primitives (a differential-testing hook).
        Instrumented (racecheck) runs never fuse, so write sets keep
        their per-subdomain attribution.
    """

    name = "sdc"

    def __init__(
        self,
        dims: int = 2,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
        axes: Optional[Sequence[int]] = None,
        adaptive: bool = True,
        validate_conflicts: bool = False,
        max_per_axis: Optional[int] = None,
        schedule_transform: Optional[
            Callable[[ColorSchedule], ColorSchedule]
        ] = None,
        grid_factory: Optional[Callable[..., SubdomainGrid]] = None,
        fused: Optional[bool] = None,
    ) -> None:
        if dims not in (1, 2, 3):
            raise ValueError(f"dims must be 1, 2 or 3, got {dims}")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.dims = dims
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()
        self.axes = list(axes) if axes is not None else None
        self.adaptive = adaptive
        self.validate_conflicts = validate_conflicts
        self.max_per_axis = max_per_axis
        self.schedule_transform = schedule_transform
        self.grid_factory = grid_factory
        self.fused = fused
        self._cached_nlist_id: Optional[int] = None
        self._grid: Optional[SubdomainGrid] = None
        self._pairs: Optional[PairPartition] = None
        self._schedule: Optional[ColorSchedule] = None
        self._last_fused: Optional[bool] = None

    # --- decomposition ---------------------------------------------------------

    def _prepare(self, atoms: Atoms, nlist: NeighborList) -> None:
        """(Re)build grid/partition/coloring when the neighbor list changed.

        Matches the paper: "steps 1 and 2 will be done when the neighbor
        list is created or updated".
        """
        if self._cached_nlist_id == id(nlist) and self._pairs is not None:
            _count_health("sdc_decomp_cache_hit")
            return
        _count_health("sdc_decomp_cache_miss")
        reach = nlist.cutoff + nlist.skin
        if self.grid_factory is not None:
            grid = self.grid_factory(atoms.box, reach)
        elif self.adaptive:
            grid = decompose_balanced(
                atoms.box, reach, self.dims, self.n_threads, axes=self.axes
            )
        else:
            grid = decompose(
                atoms.box,
                reach,
                self.dims,
                axes=self.axes,
                max_per_axis=self.max_per_axis,
            )
        coloring = lattice_coloring(grid)
        validate_coloring(grid, coloring)
        partition = build_partition(nlist.reference_positions, grid)
        pairs = build_pair_partition(partition, nlist)
        schedule = build_schedule(coloring)
        if self.schedule_transform is not None:
            schedule = self.schedule_transform(schedule)
        if self.validate_conflicts:
            report = check_schedule_conflicts(pairs, schedule)
            if not report.ok:
                raise RuntimeError(
                    f"SDC schedule has {report.n_conflicting_atoms} write "
                    f"conflicts; first: {report.conflicts[:3]}"
                )
        self._grid = grid
        self._pairs = pairs
        self._schedule = schedule
        self._cached_nlist_id = id(nlist)

    @property
    def grid(self) -> Optional[SubdomainGrid]:
        """The current decomposition (None before the first compute)."""
        return self._grid

    @property
    def pair_partition(self) -> Optional[PairPartition]:
        """The current pair partition (None before the first compute)."""
        return self._pairs

    @property
    def schedule(self) -> Optional[ColorSchedule]:
        """The current color schedule (None before the first compute)."""
        return self._schedule

    # --- physics -----------------------------------------------------------------

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        if not nlist.half:
            raise ValueError("SDC consumes half neighbor lists")
        with self._phase("neighbor-rebuild"):
            with self._span("neighbor-rebuild"):
                self._prepare(atoms, nlist)
        assert self._pairs is not None and self._schedule is not None
        pairs = self._pairs
        schedule = self._schedule
        tier = self._tier()
        fused = self._use_fused(tier, potential)
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms

        # phase 1: densities, color by color
        rho = self._array("rho", n)
        # fused drivers return per-color pair-energy partials, saving the
        # separate full-pair-list energy pass at the end
        color_energy = np.zeros(max(len(schedule.phases), 1))

        def density_task(subdomain: int):
            def run() -> None:
                i_idx, j_idx = pairs.pairs_of(subdomain)
                if len(i_idx) == 0:
                    return
                _, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                phi = density_pair_values(potential, r, tier=tier)
                scatter_rho_half(rho, i_idx, j_idx, phi, tier=tier)

            return run

        def fused_density_task(color: int, members: np.ndarray):
            def run() -> None:
                color_energy[color] = tier.sdc_density_color_phase(
                    potential,
                    positions,
                    box,
                    pairs.i_idx,
                    pairs.j_idx,
                    pairs.offsets,
                    np.asarray(members, dtype=np.int64),
                    rho,
                    want_pair_energy=True,
                )

            return run

        with self._phase("density"):
            for color, members in enumerate(schedule.phases):
                with self._span(
                    f"density:color{color}",
                    color=color,
                    n_subdomains=len(members),
                    fused=fused,
                ):
                    if fused:
                        self.backend.run_phase(
                            [fused_density_task(color, members)]
                        )
                    else:
                        self.backend.run_phase(
                            [density_task(int(s)) for s in members]
                        )

        # phase 2: embedding, plain parallel for
        fp = np.empty(n)
        emb_parts = np.zeros(self.n_threads)

        def embed_task(k: int, rows: np.ndarray):
            def run() -> None:
                emb_parts[k] = float(np.sum(potential.embed(rho[rows])))
                fp[rows] = potential.embed_deriv(rho[rows])

            return run

        chunks = atom_chunks(n, self.n_threads)
        with self._phase("embedding"):
            with self._span("embedding", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [embed_task(k, rows) for k, rows in enumerate(chunks)]
                )
        embedding_energy = float(np.sum(emb_parts))

        # phase 3: forces, color by color
        forces = self._array("forces", (n, 3))

        def force_task(subdomain: int):
            def run() -> None:
                i_idx, j_idx = pairs.pairs_of(subdomain)
                if len(i_idx) == 0:
                    return
                delta, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                coeff = force_pair_coefficients(
                    potential,
                    r,
                    fp[i_idx],
                    fp[j_idx],
                    pair_ids=(i_idx, j_idx),
                    tier=tier,
                )
                pair_forces = coeff[:, None] * delta
                scatter_force_half(forces, i_idx, j_idx, pair_forces, tier=tier)

            return run

        def fused_force_task(members: np.ndarray):
            def run() -> None:
                tier.sdc_force_color_phase(
                    potential,
                    positions,
                    box,
                    pairs.i_idx,
                    pairs.j_idx,
                    pairs.offsets,
                    np.asarray(members, dtype=np.int64),
                    fp,
                    forces,
                )

            return run

        with self._phase("force"):
            for color, members in enumerate(schedule.phases):
                with self._span(
                    f"force:color{color}",
                    color=color,
                    n_subdomains=len(members),
                    fused=fused,
                ):
                    if fused:
                        self.backend.run_phase([fused_force_task(members)])
                    else:
                        self.backend.run_phase(
                            [force_task(int(s)) for s in members]
                        )

        if fused:
            # the fused density drivers already summed phi-pair energies
            # color by color over the full (half) pair partition
            pair_energy = float(np.sum(color_energy))
        else:
            pair_energy = self._total_pair_energy(potential, atoms, nlist)
        return self._finalize(
            potential, atoms, nlist, rho, fp, forces, embedding_energy, pair_energy
        )

    def _use_fused(self, tier, potential: EAMPotential) -> bool:
        """Decide color-phase fusion for this compute (see class docstring).

        The decision lands in the health plane: a counter per compute,
        plus a ``scheduler``-category event whenever it *changes* (first
        compute, or a tier/potential swap flipping fusion mid-run).
        """
        if self.fused is False or self._instrument is not None:
            fused = False
        elif self.fused is True:
            fused = True
        else:
            fused = tier.fused_color_phases(potential)
        _count_health("sdc_fused_compute" if fused else "sdc_unfused_compute")
        if fused != self._last_fused:
            self._last_fused = fused
            try:
                from repro.obs.recorder import record

                record(
                    "scheduler",
                    "fusion-change",
                    fused=fused,
                    tier=tier.name,
                    forced=self.fused,
                )
            except Exception:  # pragma: no cover - telemetry stays optional
                pass
        return fused

    # --- timing plan ----------------------------------------------------------------

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        """SDC plan: per-color subdomain task phases + embedding.

        ``stats`` must carry subdomain statistics built against *this*
        strategy's decomposition dimensionality (the harness pairs them).
        """
        if stats.sub is None or stats.n_colors == 0:
            raise ValueError("SDC plan needs subdomain statistics")
        sub = stats.sub
        phases: List[SimPhase] = []

        def scatter_phases(kind: str, c_compute: float, c_memory: float) -> None:
            for color, members in enumerate(stats.color_members):
                pairs = sub.pairs[members].astype(float)
                ws = sub.write_atoms[members].astype(float) * BYTES_PER_ATOM
                phases.append(
                    SimPhase.make(
                        name=f"{kind}:color{color}",
                        n_tasks=len(members),
                        compute=pairs * c_compute,
                        memory=pairs * c_memory,
                        working_set=ws,
                        barrier=True,
                        locality=stats.locality,
                    )
                )

        scatter_phases(
            "density",
            machine.cycles_pair_density_compute,
            machine.cycles_pair_density_memory,
        )
        per_chunk = stats.n_atoms / max(n_threads, 1)
        phases.append(
            uniform_phase(
                "embedding",
                n_tasks=n_threads,
                compute_per_task=per_chunk * machine.cycles_atom_embed_compute,
                memory_per_task=per_chunk * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            )
        )
        scatter_phases(
            "force",
            machine.cycles_pair_force_compute,
            machine.cycles_pair_force_memory,
        )
        return SimPlan(
            name=f"{self.name}-{self.dims}d",
            phases=phases,
            n_parallel_regions=3,
        )
