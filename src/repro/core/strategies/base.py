"""Strategy interface and shared kernel plumbing.

A :class:`ReductionStrategy` does two things:

* :meth:`compute` — actually evaluate the 3-phase EAM computation on a
  real system, organizing the irregular reductions the way the strategy
  prescribes (this is what the equivalence tests compare against the
  serial kernels);
* :meth:`plan` — describe that organization as a
  :class:`~repro.parallel.plan.SimPlan` so the simulated machine can time
  it at any core count (this is what regenerates the paper's tables).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Optional

import numpy as np

from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPlan
from repro.parallel.workload import WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import EAMComputation, pair_geometry
from repro.utils.profiler import NULL_PHASE, PhaseProfiler


class ReductionStrategy(ABC):
    """One way of parallelizing the EAM irregular reductions."""

    #: registry key, e.g. ``"sdc"`` or ``"critical-section"``
    name: ClassVar[str] = "abstract"

    #: whether the strategy relies on disjoint write sets (True) or on
    #: explicit synchronization of overlapping writes (False).  The
    #: dynamic race detector treats same-phase overlaps as failures only
    #: for lock-free strategies.
    lock_free: ClassVar[bool] = True

    #: optional write instrument (e.g. the racecheck recorder); when set,
    #: :meth:`_array` hands out shadow-wrapped reduction arrays.
    _instrument = None

    #: optional pinned kernel tier; when set, every kernel call this
    #: strategy makes goes to it explicitly instead of the process-global
    #: active tier — the concurrency-safe selection path (two strategies
    #: on different threads cannot clobber each other's tier).
    _kernel_tier = None

    #: optional wall-clock profiler; when set, :meth:`_phase` times the
    #: strategy's phase regions under their canonical names
    _profiler: "PhaseProfiler | None" = None
    _profiling_observer = None

    #: optional span tracer; when set, :meth:`_span` records the
    #: strategy's merge/scatter/lock sections as timeline spans
    _tracer = None
    _tracing_observer = None

    def attach_profiler(self, profiler: PhaseProfiler) -> None:
        """Record per-phase wall-clock through ``profiler``.

        Also adds a :class:`~repro.utils.profiler.ProfilingObserver` to
        the strategy's backend (when it has one) so barrier slack is
        charged to ``color-barrier``.  Added, not attached exclusively —
        a tracer or event log may watch the same backend.
        """
        from repro.utils.profiler import ProfilingObserver

        self._profiler = profiler
        backend = getattr(self, "backend", None)
        if backend is not None:
            self._profiling_observer = ProfilingObserver(profiler)
            backend.add_observer(self._profiling_observer)

    def detach_profiler(self) -> None:
        """Stop profiling (idempotent)."""
        self._profiler = None
        backend = getattr(self, "backend", None)
        if backend is not None and self._profiling_observer is not None:
            backend.remove_observer(self._profiling_observer)
        self._profiling_observer = None

    def attach_tracer(self, tracer) -> None:
        """Record timeline spans through ``tracer``.

        Adds a :class:`~repro.obs.tracer.TracingObserver` to the
        strategy's backend (when it has one) so every backend task shows
        up on its worker's track, alongside the strategy-level region
        spans from :meth:`_span`.
        """
        from repro.obs.tracer import TracingObserver

        self._tracer = tracer
        backend = getattr(self, "backend", None)
        if backend is not None:
            self._tracing_observer = TracingObserver(tracer)
            backend.add_observer(self._tracing_observer)

    def detach_tracer(self) -> None:
        """Stop tracing (idempotent)."""
        self._tracer = None
        backend = getattr(self, "backend", None)
        if backend is not None and self._tracing_observer is not None:
            backend.remove_observer(self._tracing_observer)
        self._tracing_observer = None

    def _phase(self, name: str):
        """Context manager timing a phase region (no-op when unprofiled)."""
        if self._profiler is None:
            return NULL_PHASE
        return self._profiler.phase(name)

    def _span(self, name: str, **args):
        """Context manager recording a span (no-op when untraced)."""
        if self._tracer is None:
            return NULL_PHASE
        return self._tracer.span(name, **args)

    def set_kernel_tier(self, tier) -> None:
        """Pin this strategy's kernel tier (None reverts to the process
        default).

        Accepts anything :func:`repro.kernels.get` accepts — a variant
        spec string, a :class:`~repro.kernels.KernelTierConfig`, or a
        live tier.  Resolution is eager so unknown specs raise here.
        """
        from repro import kernels

        self._kernel_tier = kernels.get(tier) if tier is not None else None

    def _tier(self):
        """The tier this strategy's kernel calls dispatch to."""
        from repro import kernels

        return (
            self._kernel_tier
            if self._kernel_tier is not None
            else kernels.active_tier()
        )

    @property
    def kernel_tier(self) -> str:
        """Resolved tier name this strategy computes with."""
        return self._tier().name

    def attach_instrument(self, recorder) -> None:
        """Record reduction-array writes through ``recorder``.

        ``recorder`` must expose ``wrap(name, array) -> ndarray``
        (see :class:`repro.analysis.racecheck.WriteRecorder`).
        """
        self._instrument = recorder

    def detach_instrument(self) -> None:
        """Stop instrumenting new reduction arrays (idempotent)."""
        self._instrument = None

    def _array(self, name: str, shape) -> np.ndarray:
        """Allocate a zeroed reduction array, shadow-wrapped when
        an instrument is attached."""
        array = np.zeros(shape)
        if self._instrument is None:
            return array
        return self._instrument.wrap(name, array)

    def close(self) -> None:
        """Release the strategy's execution backend (idempotent).

        Lets a strategy be torn down uniformly with the process-backed
        calculators (``Simulation.close`` calls this duck-typed).
        """
        backend = getattr(self, "backend", None)
        if backend is not None:
            backend.close()

    def __enter__(self) -> "ReductionStrategy":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @abstractmethod
    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        """Evaluate densities, embedding and forces; update ``atoms``."""

    @abstractmethod
    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        """Build the execution plan the simulator times."""

    # --- shared helpers -------------------------------------------------------

    def _total_pair_energy(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> float:
        """Pair-energy sum (not part of the timed kernels; shared by all)."""
        i_idx, j_idx = nlist.pair_arrays()
        if len(i_idx) == 0:
            return 0.0
        _, r = pair_geometry(
            atoms.positions, atoms.box, i_idx, j_idx, tier=self._tier()
        )
        v = potential.pair_energy(r)
        return float(np.sum(v)) * (1.0 if nlist.half else 0.5)

    @staticmethod
    def _finalize(
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
        rho: np.ndarray,
        fp: np.ndarray,
        forces: np.ndarray,
        embedding_energy: float,
        pair_energy: float,
    ) -> EAMComputation:
        """Store results into ``atoms`` and wrap them up."""
        # drop any shadow instrumentation before results leave the strategy
        rho = np.asarray(rho)
        fp = np.asarray(fp)
        forces = np.asarray(forces)
        atoms.rho[:] = rho
        atoms.fp[:] = fp
        atoms.forces[:] = forces
        return EAMComputation(
            pair_energy=pair_energy,
            embedding_energy=embedding_energy,
            rho=rho,
            fp=fp,
            forces=forces,
        )


def atom_chunks(n_atoms: int, n_chunks: int) -> list[np.ndarray]:
    """Contiguous near-equal atom-row chunks (OpenMP static over atoms)."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    base = n_atoms // n_chunks
    extra = n_atoms % n_chunks
    out = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        out.append(np.arange(start, start + size, dtype=np.int64))
        start += size
    return out


def rows_pair_slice(
    nlist: NeighborList, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat ``(i, j)`` pair arrays for the rows of a chunk of atoms."""
    offsets = nlist.csr.offsets
    lengths = nlist.csr.row_lengths()
    from repro.md.neighbor.cells import concat_ranges

    slots = concat_ranges(offsets[rows], lengths[rows])
    i_idx = np.repeat(rows, lengths[rows])
    return i_idx, nlist.csr.values[slots]
