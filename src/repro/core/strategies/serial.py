"""The optimized serial baseline (paper Section III: "runtimes of serial
programs on one core").

Physics goes straight through the reference kernels of
:mod:`repro.potentials.eam` (half lists, both Section II.D optimizations);
the plan is a single-thread plan with ``serial_overheads=True`` so the
simulator charges no fork-join, barrier, or contention costs — the
denominator of every speedup in Table I and Fig. 9.
"""

from __future__ import annotations

from repro.core.strategies.base import ReductionStrategy
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPlan, uniform_phase
from repro.parallel.workload import WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import EAMComputation, compute_eam_forces_serial


class SerialStrategy(ReductionStrategy):
    """Reference single-thread execution."""

    name = "serial"

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        return compute_eam_forces_serial(
            potential, atoms, nlist, profiler=self._profiler,
            tier=self._kernel_tier,
        )

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int = 1,
    ) -> SimPlan:
        pairs = stats.n_half_pairs
        phases = [
            uniform_phase(
                "density",
                n_tasks=1,
                compute_per_task=pairs * machine.cycles_pair_density_compute,
                memory_per_task=pairs * machine.cycles_pair_density_memory,
                locality=stats.locality,
            ),
            uniform_phase(
                "embedding",
                n_tasks=1,
                compute_per_task=stats.n_atoms * machine.cycles_atom_embed_compute,
                memory_per_task=stats.n_atoms * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            ),
            uniform_phase(
                "force",
                n_tasks=1,
                compute_per_task=pairs * machine.cycles_pair_force_compute,
                memory_per_task=pairs * machine.cycles_pair_force_memory,
                locality=stats.locality,
            ),
        ]
        return SimPlan(
            name=self.name,
            phases=phases,
            n_parallel_regions=0,
            serial_overheads=True,
        )
