"""SDC applied to plain pair potentials.

The paper's conclusion: "it is obvious that our method can be applied in
MD simulations with other potentials."  This module demonstrates that: the
same decomposition/coloring/partition machinery parallelizes the
*single-phase* force computation of a pair-wise potential (one irregular
reduction instead of EAM's two).

Both calculators satisfy the :class:`~repro.md.simulation.ForceCalculator`
protocol, so the MD driver runs LJ dynamics through SDC unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.coloring import lattice_coloring, validate_coloring
from repro.core.domain import decompose, decompose_balanced
from repro.core.partition import build_pair_partition, build_partition
from repro.core.schedule import build_schedule
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.potentials.base import PairPotential
from repro.potentials.eam import (
    EAMComputation,
    pair_geometry,
    scatter_force_half,
)
from repro.utils.arrays import segment_sum


def _pair_forces(
    potential: PairPotential,
    positions: np.ndarray,
    box,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
) -> np.ndarray:
    """Per-pair force vectors ``-V'(r)/r * delta`` for a pair slice."""
    delta, r = pair_geometry(positions, box, i_idx, j_idx)
    coeff = -potential.pair_energy_deriv(r) / np.maximum(r, 1e-12)
    return coeff[:, None] * delta


class SerialPairCalculator:
    """Single-phase serial force computation for a pair potential.

    Returns an :class:`EAMComputation` with zero density/embedding fields
    so the MD driver's bookkeeping stays uniform.
    """

    name = "pair-serial"

    def compute(
        self, potential: PairPotential, atoms: Atoms, nlist: NeighborList
    ) -> EAMComputation:
        n = atoms.n_atoms
        i_idx, j_idx = nlist.pair_arrays()
        forces = np.zeros((n, 3))
        pair_energy = 0.0
        if len(i_idx):
            pf = _pair_forces(potential, atoms.positions, atoms.box, i_idx, j_idx)
            forces += segment_sum(pf, i_idx, n)
            if nlist.half:
                forces -= segment_sum(pf, j_idx, n)
            _, r = pair_geometry(atoms.positions, atoms.box, i_idx, j_idx)
            pair_energy = float(np.sum(potential.pair_energy(r))) * (
                1.0 if nlist.half else 0.5
            )
        atoms.forces[:] = forces
        atoms.rho[:] = 0.0
        atoms.fp[:] = 0.0
        return EAMComputation(
            pair_energy=pair_energy,
            embedding_energy=0.0,
            rho=np.zeros(n),
            fp=np.zeros(n),
            forces=forces,
        )


class SDCPairCalculator:
    """SDC-parallelized single-phase pair-potential forces.

    One color loop instead of EAM's two: for each color, all subdomains of
    that color scatter their pairs' forces into the shared array without
    locks (same disjoint-write argument as the EAM case, verified by the
    same conflict checker).
    """

    name = "pair-sdc"

    def __init__(
        self,
        dims: int = 2,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
        axes: Optional[Sequence[int]] = None,
        adaptive: bool = True,
    ) -> None:
        if dims not in (1, 2, 3):
            raise ValueError(f"dims must be 1, 2 or 3, got {dims}")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.dims = dims
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()
        self.axes = list(axes) if axes is not None else None
        self.adaptive = adaptive
        self._cached_nlist_id: Optional[int] = None
        self._pairs = None
        self._schedule = None

    def _prepare(self, atoms: Atoms, nlist: NeighborList) -> None:
        if self._cached_nlist_id == id(nlist) and self._pairs is not None:
            return
        reach = nlist.cutoff + nlist.skin
        if self.adaptive:
            grid = decompose_balanced(
                atoms.box, reach, self.dims, self.n_threads, axes=self.axes
            )
        else:
            grid = decompose(atoms.box, reach, self.dims, axes=self.axes)
        coloring = lattice_coloring(grid)
        validate_coloring(grid, coloring)
        partition = build_partition(nlist.reference_positions, grid)
        self._pairs = build_pair_partition(partition, nlist)
        self._schedule = build_schedule(coloring)
        self._cached_nlist_id = id(nlist)

    def compute(
        self, potential: PairPotential, atoms: Atoms, nlist: NeighborList
    ) -> EAMComputation:
        if not nlist.half:
            raise ValueError("SDC pair calculator consumes half lists")
        self._prepare(atoms, nlist)
        assert self._pairs is not None and self._schedule is not None
        pairs = self._pairs
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms
        forces = np.zeros((n, 3))

        def task(subdomain: int):
            def run() -> None:
                i_idx, j_idx = pairs.pairs_of(subdomain)
                if len(i_idx) == 0:
                    return
                pf = _pair_forces(potential, positions, box, i_idx, j_idx)
                scatter_force_half(forces, i_idx, j_idx, pf)

            return run

        for members in self._schedule.phases:
            self.backend.run_phase([task(int(s)) for s in members])

        i_idx, j_idx = nlist.pair_arrays()
        if len(i_idx):
            _, r = pair_geometry(positions, box, i_idx, j_idx)
            pair_energy = float(np.sum(potential.pair_energy(r)))
        else:
            pair_energy = 0.0
        atoms.forces[:] = forces
        atoms.rho[:] = 0.0
        atoms.fp[:] = 0.0
        return EAMComputation(
            pair_energy=pair_energy,
            embedding_energy=0.0,
            rho=np.zeros(n),
            fp=np.zeros(n),
            forces=forces,
        )
