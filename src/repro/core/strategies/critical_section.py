"""Critical Section (CS) strategy — the taxonomy's class 1.

"The simplest solution that enclosed the reference to the reduction array
in a critical section."  The loop over atoms is split across threads; every
pair's scatter updates (both endpoints — an atom owned by one thread is a
neighbor of atoms owned by others) execute under one global lock.  High
synchronization cost, no memory overhead; the paper measures it as the
slowest method on every case.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.core.strategies.base import (
    ReductionStrategy,
    atom_chunks,
    rows_pair_slice,
)
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPlan, uniform_phase
from repro.parallel.workload import WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    EAMComputation,
    density_pair_values,
    force_pair_coefficients,
    pair_geometry,
    scatter_force_half,
    scatter_rho_half,
)


class CriticalSectionStrategy(ReductionStrategy):
    """Every conflicting scatter guarded by one global critical section."""

    name = "critical-section"
    # overlapping writes are the point — they are serialized by the lock
    lock_free = False

    def __init__(
        self,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
        pairs_per_critical: int = 1,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if pairs_per_critical < 1:
            raise ValueError("pairs_per_critical must be >= 1")
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()
        #: how many pairs' updates one critical entry covers (1 = the
        #: paper's per-update locking; larger values model coarsening)
        self.pairs_per_critical = pairs_per_critical
        self._lock = threading.Lock()

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        if not nlist.half:
            raise ValueError("CS consumes half neighbor lists")
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms
        tier = self._tier()
        chunks = atom_chunks(n, self.n_threads)

        rho = self._array("rho", n)

        def density_task(rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(nlist, rows)
                if len(i_idx) == 0:
                    return
                _, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                phi = density_pair_values(potential, r, tier=tier)
                with self._lock:
                    with self._span("density:lock-held", n_pairs=len(i_idx)):
                        scatter_rho_half(rho, i_idx, j_idx, phi, tier=tier)

            return run

        with self._phase("density"):
            with self._span("density:critical-scatter", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [density_task(rows) for rows in chunks]
                )

        fp = np.empty(n)
        emb_parts = np.zeros(len(chunks))

        def embed_task(k: int, rows: np.ndarray):
            def run() -> None:
                emb_parts[k] = float(np.sum(potential.embed(rho[rows])))
                fp[rows] = potential.embed_deriv(rho[rows])

            return run

        with self._phase("embedding"):
            self.backend.run_phase(
                [embed_task(k, rows) for k, rows in enumerate(chunks)]
            )
        embedding_energy = float(np.sum(emb_parts))

        forces = self._array("forces", (n, 3))

        def force_task(rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(nlist, rows)
                if len(i_idx) == 0:
                    return
                delta, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                coeff = force_pair_coefficients(
                    potential, r, fp[i_idx], fp[j_idx],
                    pair_ids=(i_idx, j_idx), tier=tier,
                )
                pair_forces = coeff[:, None] * delta
                with self._lock:
                    with self._span("force:lock-held", n_pairs=len(i_idx)):
                        scatter_force_half(forces, i_idx, j_idx, pair_forces, tier=tier)

            return run

        with self._phase("force"):
            with self._span("force:critical-scatter", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [force_task(rows) for rows in chunks]
                )

        pair_energy = self._total_pair_energy(potential, atoms, nlist)
        return self._finalize(
            potential, atoms, nlist, rho, fp, forces, embedding_energy, pair_energy
        )

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        pairs_per_thread = stats.n_half_pairs / max(n_threads, 1)
        crit_per_thread = int(
            np.ceil(pairs_per_thread / self.pairs_per_critical)
        )
        per_chunk = stats.n_atoms / max(n_threads, 1)
        phases = [
            uniform_phase(
                "density",
                n_tasks=n_threads,
                compute_per_task=pairs_per_thread
                * machine.cycles_pair_density_compute,
                memory_per_task=pairs_per_thread
                * machine.cycles_pair_density_memory,
                critical_per_task=crit_per_thread,
                locality=stats.locality,
            ),
            uniform_phase(
                "embedding",
                n_tasks=n_threads,
                compute_per_task=per_chunk * machine.cycles_atom_embed_compute,
                memory_per_task=per_chunk * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            ),
            uniform_phase(
                "force",
                n_tasks=n_threads,
                compute_per_task=pairs_per_thread
                * machine.cycles_pair_force_compute,
                memory_per_task=pairs_per_thread
                * machine.cycles_pair_force_memory,
                critical_per_task=crit_per_thread,
                locality=stats.locality,
            ),
        ]
        return SimPlan(name=self.name, phases=phases, n_parallel_regions=3)
