"""Shared Array Privatization (SAP) strategy — the taxonomy's class 2.

Each thread accumulates into a *private copy* of the reduction array, then
the copies are merged into the shared array under a critical section.
Minimal synchronization during compute, but memory overhead grows linearly
with the thread count (the paper: competes for cache space, merge critical
section dominates beyond 8 cores, "not a scalable method").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.strategies.base import (
    ReductionStrategy,
    atom_chunks,
    rows_pair_slice,
)
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPhase, SimPlan, uniform_phase
from repro.parallel.workload import WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    EAMComputation,
    density_pair_values,
    force_pair_coefficients,
    pair_geometry,
    scatter_force_half,
    scatter_rho_half,
)

#: entries merged per critical-section entry in the merge loop
MERGE_CHUNK_ENTRIES = 4096


class ArrayPrivatizationStrategy(ReductionStrategy):
    """Per-thread private reduction arrays, merged under a critical section."""

    name = "array-privatization"

    def __init__(
        self,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        if not nlist.half:
            raise ValueError("SAP consumes half neighbor lists")
        tier = self._tier()
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms
        chunks = atom_chunks(n, self.n_threads)

        # --- density: private rho copies, then ordered merge -----------------
        # instrumented as one shadow: each task may only write its own row,
        # so the detector sees disjoint flat ranges when SAP is correct
        private_rho = self._array("rho_private", (self.n_threads, n))

        def density_task(k: int, rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(nlist, rows)
                if len(i_idx) == 0:
                    return
                _, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                phi = density_pair_values(potential, r, tier=tier)
                scatter_rho_half(private_rho[k], i_idx, j_idx, phi, tier=tier)

            return run

        with self._phase("density"):
            with self._span("density:private-scatter", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [density_task(k, rows) for k, rows in enumerate(chunks)]
                )
            # merge in thread order (the real code merges under a critical
            # section; fixed order keeps results deterministic)
            with self._span("density:merge", n_copies=self.n_threads):
                rho = np.asarray(private_rho).sum(axis=0)

        fp = np.empty(n)
        emb_parts = np.zeros(len(chunks))

        def embed_task(k: int, rows: np.ndarray):
            def run() -> None:
                emb_parts[k] = float(np.sum(potential.embed(rho[rows])))
                fp[rows] = potential.embed_deriv(rho[rows])

            return run

        with self._phase("embedding"):
            self.backend.run_phase(
                [embed_task(k, rows) for k, rows in enumerate(chunks)]
            )
        embedding_energy = float(np.sum(emb_parts))

        # --- forces: private force copies, then ordered merge --------------------
        private_forces = self._array("forces_private", (self.n_threads, n, 3))

        def force_task(k: int, rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(nlist, rows)
                if len(i_idx) == 0:
                    return
                delta, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                coeff = force_pair_coefficients(
                    potential, r, fp[i_idx], fp[j_idx],
                    pair_ids=(i_idx, j_idx), tier=tier,
                )
                pair_forces = coeff[:, None] * delta
                scatter_force_half(
                    private_forces[k], i_idx, j_idx, pair_forces, tier=tier
                )

            return run

        with self._phase("force"):
            with self._span("force:private-scatter", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [force_task(k, rows) for k, rows in enumerate(chunks)]
                )
            with self._span("force:merge", n_copies=self.n_threads):
                forces = np.asarray(private_forces).sum(axis=0)

        pair_energy = self._total_pair_energy(potential, atoms, nlist)
        return self._finalize(
            potential, atoms, nlist, rho, fp, forces, embedding_energy, pair_energy
        )

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        pairs_per_thread = stats.n_half_pairs / max(n_threads, 1)
        per_chunk = stats.n_atoms / max(n_threads, 1)
        phases: list[SimPhase] = []

        def privatized_region(
            kind: str,
            c_compute: float,
            c_memory: float,
            entries_per_copy: int,
        ) -> None:
            # private copies of the reduction array live for the whole region
            footprint = 8.0 * entries_per_copy * (n_threads + 1)
            phases.append(
                uniform_phase(
                    f"{kind}:init",
                    n_tasks=n_threads,
                    compute_per_task=0.0,
                    memory_per_task=entries_per_copy * machine.cycles_array_init,
                    barrier=False,
                    locality=stats.locality,
                )
            )
            phases.append(
                uniform_phase(
                    f"{kind}:compute",
                    n_tasks=n_threads,
                    compute_per_task=pairs_per_thread * c_compute,
                    memory_per_task=pairs_per_thread * c_memory,
                    locality=stats.locality,
                    footprint_bytes=footprint,
                )
            )
            phases.append(
                uniform_phase(
                    f"{kind}:merge",
                    n_tasks=n_threads,
                    serialized_per_task=entries_per_copy
                    * machine.cycles_array_merge,
                    critical_per_task=float(
                        np.ceil(entries_per_copy / MERGE_CHUNK_ENTRIES)
                    ),
                    barrier=True,
                    locality=stats.locality,
                    footprint_bytes=footprint,
                )
            )

        privatized_region(
            "density",
            machine.cycles_pair_density_compute,
            machine.cycles_pair_density_memory,
            entries_per_copy=stats.n_atoms,
        )
        phases.append(
            uniform_phase(
                "embedding",
                n_tasks=n_threads,
                compute_per_task=per_chunk * machine.cycles_atom_embed_compute,
                memory_per_task=per_chunk * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            )
        )
        privatized_region(
            "force",
            machine.cycles_pair_force_compute,
            machine.cycles_pair_force_memory,
            entries_per_copy=3 * stats.n_atoms,
        )
        return SimPlan(name=self.name, phases=phases, n_parallel_regions=3)
