"""Redundant Computation (RC) strategy — the taxonomy's last class.

Uses a *full* neighbor list: every pair appears in both directions, so a
thread that owns a block of atoms writes only its own rows — the data
dependence between loop iterations disappears entirely.  The price is the
paper's headline comparison point: every phi and every pair force is
computed twice, and the doubled neighbor list costs memory.  "Its double
computation cost can be amortized over many cores ... but the efficiency
of RC method is low than that of SDC."
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.strategies.base import (
    ReductionStrategy,
    atom_chunks,
    rows_pair_slice,
)
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList, full_from_half
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPlan, uniform_phase
from repro.parallel.workload import WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    EAMComputation,
    density_pair_values,
    force_pair_coefficients,
    pair_geometry,
    scatter_force_owned,
    scatter_rho_owned,
)


class RedundantComputationStrategy(ReductionStrategy):
    """Full neighbor lists; each thread writes only its owned rows."""

    name = "redundant-computation"

    def __init__(
        self,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()
        self._full_cache_id: Optional[int] = None
        self._full: Optional[NeighborList] = None

    def _full_list(self, nlist: NeighborList) -> NeighborList:
        """Expand (and cache) the doubled neighbor list RC consumes."""
        if self._full_cache_id == id(nlist) and self._full is not None:
            return self._full
        self._full = full_from_half(nlist) if nlist.half else nlist
        self._full_cache_id = id(nlist)
        return self._full

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        with self._phase("neighbor-rebuild"):
            full = self._full_list(nlist)
        tier = self._tier()
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms
        chunks = atom_chunks(n, self.n_threads)

        rho = self._array("rho", n)

        def density_task(rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(full, rows)
                if len(i_idx) == 0:
                    return
                _, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                phi = density_pair_values(potential, r, tier=tier)
                # owned rows only: offset into the chunk's contiguous range,
                # accumulate into a chunk-local buffer so the task's write
                # into the shared array stays a plain slice assignment
                local = np.zeros(len(rows))
                scatter_rho_owned(local, i_idx - rows[0], phi, len(rows), tier=tier)
                rho[rows] = local

            return run

        with self._phase("density"):
            with self._span("density:doubled-pairs", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [density_task(rows) for rows in chunks if len(rows)]
                )

        fp = np.empty(n)
        emb_parts = np.zeros(len(chunks))

        def embed_task(k: int, rows: np.ndarray):
            def run() -> None:
                emb_parts[k] = float(np.sum(potential.embed(rho[rows])))
                fp[rows] = potential.embed_deriv(rho[rows])

            return run

        with self._phase("embedding"):
            self.backend.run_phase(
                [embed_task(k, rows) for k, rows in enumerate(chunks)]
            )
        embedding_energy = float(np.sum(emb_parts))

        forces = self._array("forces", (n, 3))

        def force_task(rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(full, rows)
                if len(i_idx) == 0:
                    return
                delta, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                coeff = force_pair_coefficients(
                    potential, r, fp[i_idx], fp[j_idx],
                    pair_ids=(i_idx, j_idx), tier=tier,
                )
                pair_forces = coeff[:, None] * delta
                local = np.zeros((len(rows), 3))
                scatter_force_owned(
                    local, i_idx - rows[0], pair_forces, len(rows), tier=tier
                )
                forces[rows] = local

            return run

        with self._phase("force"):
            with self._span("force:doubled-pairs", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [force_task(rows) for rows in chunks if len(rows)]
                )

        pair_energy = self._total_pair_energy(potential, atoms, nlist)
        return self._finalize(
            potential, atoms, nlist, rho, fp, forces, embedding_energy, pair_energy
        )

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        # full list: twice the directed pairs of the half list
        pairs_per_thread = 2.0 * stats.n_half_pairs / max(n_threads, 1)
        per_chunk = stats.n_atoms / max(n_threads, 1)
        phases = [
            uniform_phase(
                "density",
                n_tasks=n_threads,
                compute_per_task=pairs_per_thread
                * machine.cycles_pair_density_compute,
                memory_per_task=pairs_per_thread
                * machine.cycles_pair_density_memory,
                locality=stats.locality,
            ),
            uniform_phase(
                "embedding",
                n_tasks=n_threads,
                compute_per_task=per_chunk * machine.cycles_atom_embed_compute,
                memory_per_task=per_chunk * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            ),
            uniform_phase(
                "force",
                n_tasks=n_threads,
                compute_per_task=pairs_per_thread
                * machine.cycles_pair_force_compute,
                memory_per_task=pairs_per_thread
                * machine.cycles_pair_force_memory,
                locality=stats.locality,
            ),
        ]
        return SimPlan(name=self.name, phases=phases, n_parallel_regions=3)
