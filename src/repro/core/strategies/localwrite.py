"""LOCALWRITE strategy — the taxonomy's class 3 (Han & Tseng).

The paper's third class "partitions computations and distributes it among
threads in order to avoid write conflicts", citing LOCALWRITE [19, 20]:
each processor applies the *owner-computes* rule to the reduction array —
a pair whose endpoints belong to different owners is computed by **both**
owners, each updating only its own element.  Compared to the paper's
other strategies:

* like SDC it partitions space, but it needs **no coloring and no
  inter-color barriers** — every subdomain runs concurrently;
* like RC it pays redundant computation, but only for *boundary* pairs
  (both endpoints' owners differ), not for every pair;
* the "inspector" cost the paper attributes to this class is the pair
  classification (interior vs boundary), done once per neighbor-list
  rebuild.

With subdomains much larger than the cutoff, boundary pairs are a small
fraction, so LOCALWRITE sits between SDC and RC — a natural extra point
on the paper's comparison axis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.domain import SubdomainGrid, decompose, decompose_balanced
from repro.core.partition import build_partition
from repro.core.strategies.base import ReductionStrategy
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPhase, SimPlan, uniform_phase
from repro.parallel.workload import BYTES_PER_ATOM, WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    EAMComputation,
    density_pair_values,
    force_pair_coefficients,
    pair_geometry,
    scatter_force_half,
    scatter_rho_half,
)


class _LocalWriteTables:
    """Inspector output: per-subdomain interior/boundary pair slices."""

    def __init__(
        self,
        grid: SubdomainGrid,
        subdomain_of_atom: np.ndarray,
        nlist: NeighborList,
    ) -> None:
        i_idx, j_idx = nlist.pair_arrays()
        owner_i = subdomain_of_atom[i_idx]
        owner_j = subdomain_of_atom[j_idx]
        interior = owner_i == owner_j
        n_sub = grid.n_subdomains

        def group(pairs_i, pairs_j, owners):
            order = np.argsort(owners, kind="stable")
            counts = np.bincount(owners, minlength=n_sub)
            offsets = np.zeros(n_sub + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            return pairs_i[order], pairs_j[order], offsets

        self.int_i, self.int_j, self.int_offsets = group(
            i_idx[interior], j_idx[interior], owner_i[interior]
        )
        # boundary pairs appear twice: once under each owner; `own_side`
        # records which endpoint the owner updates
        bi, bj = i_idx[~interior], j_idx[~interior]
        boi, boj = owner_i[~interior], owner_j[~interior]
        all_i = np.concatenate([bi, bi])
        all_j = np.concatenate([bj, bj])
        owners = np.concatenate([boi, boj])
        side = np.concatenate(
            [np.zeros(len(bi), dtype=np.int8), np.ones(len(bj), dtype=np.int8)]
        )
        order = np.argsort(owners, kind="stable")
        self.bnd_i = all_i[order]
        self.bnd_j = all_j[order]
        self.bnd_side = side[order]
        counts = np.bincount(owners, minlength=n_sub)
        self.bnd_offsets = np.zeros(n_sub + 1, dtype=np.int64)
        np.cumsum(counts, out=self.bnd_offsets[1:])
        self.n_boundary_pairs = len(bi)
        self.n_interior_pairs = int(interior.sum())

    def interior_of(self, s: int):
        lo, hi = self.int_offsets[s], self.int_offsets[s + 1]
        return self.int_i[lo:hi], self.int_j[lo:hi]

    def boundary_of(self, s: int):
        lo, hi = self.bnd_offsets[s], self.bnd_offsets[s + 1]
        return self.bnd_i[lo:hi], self.bnd_j[lo:hi], self.bnd_side[lo:hi]


class LocalWriteStrategy(ReductionStrategy):
    """Owner-computes partitioning with redundant boundary computation."""

    name = "localwrite"

    def __init__(
        self,
        dims: int = 3,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
        axes: Optional[Sequence[int]] = None,
        adaptive: bool = True,
    ) -> None:
        if dims not in (1, 2, 3):
            raise ValueError(f"dims must be 1, 2 or 3, got {dims}")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.dims = dims
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()
        self.axes = list(axes) if axes is not None else None
        self.adaptive = adaptive
        self._cached_nlist_id: Optional[int] = None
        self._tables: Optional[_LocalWriteTables] = None
        self._grid: Optional[SubdomainGrid] = None

    def _prepare(self, atoms: Atoms, nlist: NeighborList) -> None:
        """The inspector: classify pairs once per neighbor-list rebuild.

        Note LOCALWRITE has no > 2*reach constraint — owners only ever
        write their own atoms — but we reuse the SDC decomposition so the
        comparison is subdomain-for-subdomain fair.
        """
        if self._cached_nlist_id == id(nlist) and self._tables is not None:
            return
        reach = nlist.cutoff + nlist.skin
        if self.adaptive:
            grid = decompose_balanced(
                atoms.box, reach, self.dims, self.n_threads, axes=self.axes
            )
        else:
            grid = decompose(atoms.box, reach, self.dims, axes=self.axes)
        partition = build_partition(nlist.reference_positions, grid)
        self._tables = _LocalWriteTables(
            grid, partition.subdomain_of_atom, nlist
        )
        self._grid = grid
        self._cached_nlist_id = id(nlist)

    @property
    def grid(self) -> Optional[SubdomainGrid]:
        """The current decomposition (None before the first compute)."""
        return self._grid

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        if not nlist.half:
            raise ValueError("LOCALWRITE consumes half neighbor lists")
        with self._phase("neighbor-rebuild"):
            self._prepare(atoms, nlist)
        assert self._tables is not None and self._grid is not None
        tables = self._tables
        tier = self._tier()
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms
        n_sub = self._grid.n_subdomains

        rho = self._array("rho", n)

        def density_task(s: int):
            def run() -> None:
                i_in, j_in = tables.interior_of(s)
                if len(i_in):
                    _, r = pair_geometry(positions, box, i_in, j_in, tier=tier)
                    phi = density_pair_values(potential, r, tier=tier)
                    scatter_rho_half(rho, i_in, j_in, phi, tier=tier)
                i_b, j_b, side = tables.boundary_of(s)
                if len(i_b):
                    _, r = pair_geometry(positions, box, i_b, j_b, tier=tier)
                    phi = density_pair_values(potential, r, tier=tier)
                    # one-sided owned write: stays np.add.at so the task's
                    # write set is exactly its owned boundary rows
                    own = np.where(side == 0, i_b, j_b)
                    np.add.at(rho, own, phi)

            return run

        # single fully parallel phase: every subdomain writes only its
        # own atoms, so no colors and no intermediate barriers
        with self._phase("density"):
            with self._span("density:owned-scatter", n_subdomains=n_sub):
                self.backend.run_phase(
                    [density_task(s) for s in range(n_sub)]
                )

        with self._phase("embedding"):
            embedding_energy = float(np.sum(potential.embed(np.asarray(rho))))
            fp = potential.embed_deriv(np.asarray(rho))

        forces = self._array("forces", (n, 3))

        def force_task(s: int):
            def run() -> None:
                i_in, j_in = tables.interior_of(s)
                if len(i_in):
                    delta, r = pair_geometry(positions, box, i_in, j_in, tier=tier)
                    coeff = force_pair_coefficients(
                        potential, r, fp[i_in], fp[j_in],
                        pair_ids=(i_in, j_in), tier=tier,
                    )
                    pf = coeff[:, None] * delta
                    scatter_force_half(forces, i_in, j_in, pf, tier=tier)
                i_b, j_b, side = tables.boundary_of(s)
                if len(i_b):
                    delta, r = pair_geometry(positions, box, i_b, j_b, tier=tier)
                    coeff = force_pair_coefficients(
                        potential, r, fp[i_b], fp[j_b],
                        pair_ids=(i_b, j_b), tier=tier,
                    )
                    pf = coeff[:, None] * delta
                    own = np.where(side == 0, i_b, j_b)
                    sign = np.where(side == 0, 1.0, -1.0)
                    for axis in range(3):
                        np.add.at(
                            forces[:, axis], own, sign * pf[:, axis]
                        )

            return run

        with self._phase("force"):
            with self._span("force:owned-scatter", n_subdomains=n_sub):
                self.backend.run_phase(
                    [force_task(s) for s in range(n_sub)]
                )

        pair_energy = self._total_pair_energy(potential, atoms, nlist)
        return self._finalize(
            potential, atoms, nlist, rho, fp, forces, embedding_energy, pair_energy
        )

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        """One parallel phase per kernel; boundary pairs computed twice.

        Uses the workload's subdomain statistics plus an analytic boundary
        fraction (the halo share of each subdomain's pairs).
        """
        if stats.sub is None:
            raise ValueError("LOCALWRITE plan needs subdomain statistics")
        sub = stats.sub
        # boundary pairs ~ pairs whose partner is outside: the halo share
        # of the write set approximates the fraction of boundary pairs
        halo_fraction = np.clip(
            (sub.write_atoms - sub.atoms) / np.maximum(sub.write_atoms, 1.0),
            0.0,
            1.0,
        )
        eff_pairs = sub.pairs * (1.0 + halo_fraction)
        ws = sub.write_atoms * BYTES_PER_ATOM
        phases: List[SimPhase] = []
        for kind, c_compute, c_memory in (
            (
                "density",
                machine.cycles_pair_density_compute,
                machine.cycles_pair_density_memory,
            ),
            (
                "force",
                machine.cycles_pair_force_compute,
                machine.cycles_pair_force_memory,
            ),
        ):
            phases.append(
                SimPhase.make(
                    name=kind,
                    n_tasks=sub.n_subdomains,
                    compute=eff_pairs * c_compute,
                    memory=eff_pairs * c_memory,
                    working_set=ws,
                    barrier=True,
                    locality=stats.locality,
                )
            )
        per_chunk = stats.n_atoms / max(n_threads, 1)
        phases.insert(
            1,
            uniform_phase(
                "embedding",
                n_tasks=n_threads,
                compute_per_task=per_chunk * machine.cycles_atom_embed_compute,
                memory_per_task=per_chunk * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            ),
        )
        return SimPlan(name=self.name, phases=phases, n_parallel_regions=3)
