"""Atomic-update strategy — lock-free fine-grained synchronization.

The paper's taxonomy mentions atomics alongside critical sections as
class-1 solutions ("critical region, atomic or lock in loop").  The
strategy is CS without the lock: every scatter update is a hardware atomic
read-modify-write.  Cheaper per update than a critical section, but still
paying a coherence transaction per irregular update — it scales better
than CS and worse than SDC/RC.  Included as the natural ablation between
CS and SDC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.strategies.base import (
    ReductionStrategy,
    atom_chunks,
    rows_pair_slice,
)
from repro.md.atoms import Atoms
from repro.md.neighbor.verlet import NeighborList
from repro.parallel.backends.base import ExecutionBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.machine import MachineConfig
from repro.parallel.plan import SimPlan, uniform_phase
from repro.parallel.workload import WorkloadStats
from repro.potentials.base import EAMPotential
from repro.potentials.eam import (
    EAMComputation,
    density_pair_values,
    force_pair_coefficients,
    pair_geometry,
    scatter_force_half,
    scatter_rho_half,
)


class AtomicStrategy(ReductionStrategy):
    """Scatter updates performed as hardware atomics (no lock).

    In the Python realization ``np.add.at`` under the GIL *is* atomic with
    respect to other closures, so the physics is exact; the cost model is
    where the per-update atomic price appears.
    """

    name = "atomic"
    # overlapping writes are expected — each update is its own atomic RMW
    lock_free = False

    def __init__(
        self,
        n_threads: int = 1,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self.backend = backend or SerialBackend()

    def compute(
        self,
        potential: EAMPotential,
        atoms: Atoms,
        nlist: NeighborList,
    ) -> EAMComputation:
        if not nlist.half:
            raise ValueError("atomic strategy consumes half neighbor lists")
        tier = self._tier()
        positions = atoms.positions
        box = atoms.box
        n = atoms.n_atoms
        chunks = atom_chunks(n, self.n_threads)

        rho = self._array("rho", n)

        def density_task(rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(nlist, rows)
                if len(i_idx) == 0:
                    return
                _, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                phi = density_pair_values(potential, r, tier=tier)
                scatter_rho_half(rho, i_idx, j_idx, phi, tier=tier)

            return run

        with self._phase("density"):
            with self._span("density:atomic-scatter", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [density_task(rows) for rows in chunks]
                )

        fp = np.empty(n)
        emb_parts = np.zeros(len(chunks))

        def embed_task(k: int, rows: np.ndarray):
            def run() -> None:
                emb_parts[k] = float(np.sum(potential.embed(rho[rows])))
                fp[rows] = potential.embed_deriv(rho[rows])

            return run

        with self._phase("embedding"):
            self.backend.run_phase(
                [embed_task(k, rows) for k, rows in enumerate(chunks)]
            )
        embedding_energy = float(np.sum(emb_parts))

        forces = self._array("forces", (n, 3))

        def force_task(rows: np.ndarray):
            def run() -> None:
                i_idx, j_idx = rows_pair_slice(nlist, rows)
                if len(i_idx) == 0:
                    return
                delta, r = pair_geometry(positions, box, i_idx, j_idx, tier=tier)
                coeff = force_pair_coefficients(
                    potential, r, fp[i_idx], fp[j_idx],
                    pair_ids=(i_idx, j_idx), tier=tier,
                )
                pair_forces = coeff[:, None] * delta
                scatter_force_half(forces, i_idx, j_idx, pair_forces, tier=tier)

            return run

        with self._phase("force"):
            with self._span("force:atomic-scatter", n_chunks=len(chunks)):
                self.backend.run_phase(
                    [force_task(rows) for rows in chunks]
                )

        pair_energy = self._total_pair_energy(potential, atoms, nlist)
        return self._finalize(
            potential, atoms, nlist, rho, fp, forces, embedding_energy, pair_energy
        )

    def plan(
        self,
        stats: WorkloadStats,
        machine: MachineConfig,
        n_threads: int,
    ) -> SimPlan:
        pairs_per_thread = stats.n_half_pairs / max(n_threads, 1)
        per_chunk = stats.n_atoms / max(n_threads, 1)
        # per-pair atomic traffic: 2 scalar updates in density, 6 in force
        atomic_density = 2.0 * machine.atomic_base_cycles
        atomic_force = 6.0 * machine.atomic_base_cycles
        phases = [
            uniform_phase(
                "density",
                n_tasks=n_threads,
                compute_per_task=pairs_per_thread
                * machine.cycles_pair_density_compute,
                memory_per_task=pairs_per_thread
                * (machine.cycles_pair_density_memory + atomic_density),
                locality=stats.locality,
            ),
            uniform_phase(
                "embedding",
                n_tasks=n_threads,
                compute_per_task=per_chunk * machine.cycles_atom_embed_compute,
                memory_per_task=per_chunk * machine.cycles_atom_embed_memory,
                locality=stats.locality,
            ),
            uniform_phase(
                "force",
                n_tasks=n_threads,
                compute_per_task=pairs_per_thread
                * machine.cycles_pair_force_compute,
                memory_per_task=pairs_per_thread
                * (machine.cycles_pair_force_memory + atomic_force),
                locality=stats.locality,
            ),
        ]
        return SimPlan(name=self.name, phases=phases, n_parallel_regions=3)
