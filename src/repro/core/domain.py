"""Subdomain grids — step 1 of the SDC method.

Section II.B of the paper: *"SDC method firstly split the spatial domain of
simulations into several subdomains. But in order to make computations as
supposed, we require that the length of subdomains in each of the spatial
decomposed dimensions should be longer than 2 r_c, and we require that the
number of subdomains in each of the spatial decomposed dimensions should be
even."*

Both constraints exist for one reason: with edges longer than ``2 r``
(``r`` being the neighbor-list reach, cutoff + skin) and even counts under
periodic wrap-around, subdomains at grid distance >= 2 along every
decomposed axis have write regions (own volume dilated by ``r``) that
cannot overlap — which is exactly what the coloring exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.box import Box


class DecompositionError(ValueError):
    """The box cannot be decomposed under the SDC constraints."""


@dataclass(frozen=True)
class SubdomainGrid:
    """A regular grid of subdomains over a periodic box.

    Attributes
    ----------
    box:
        the simulation box being decomposed.
    counts:
        subdomains per axis; 1 on axes that are not decomposed.
    reach:
        the interaction reach (cutoff + skin) the constraints were checked
        against.  Every decomposed axis satisfies ``edge > 2 * reach`` and
        has an even count.
    """

    box: Box
    counts: Tuple[int, int, int]
    reach: float

    def __post_init__(self) -> None:
        if any(c < 1 for c in self.counts):
            raise ValueError(f"counts must be >= 1, got {self.counts}")
        if self.reach <= 0:
            raise ValueError(f"reach must be positive, got {self.reach}")
        for axis, count in enumerate(self.counts):
            if count == 1:
                continue
            edge = self.box.lengths[axis] / count
            if not edge > 2.0 * self.reach:
                raise DecompositionError(
                    f"axis {axis}: subdomain edge {edge:.4f} must exceed "
                    f"2*reach = {2 * self.reach:.4f}"
                )
            if count % 2 != 0:
                raise DecompositionError(
                    f"axis {axis}: count {count} must be even"
                )

    # --- structure ----------------------------------------------------------

    @property
    def decomposed_axes(self) -> Tuple[int, ...]:
        """Axes with more than one subdomain."""
        return tuple(a for a in range(3) if self.counts[a] > 1)

    @property
    def dimensionality(self) -> int:
        """1, 2 or 3 — the paper's one/two/three-dimensional SDC variants."""
        return len(self.decomposed_axes)

    @property
    def n_subdomains(self) -> int:
        """Total subdomain count."""
        return self.counts[0] * self.counts[1] * self.counts[2]

    @property
    def n_colors(self) -> int:
        """Colors the lattice coloring needs: 2^dimensionality."""
        return 2 ** self.dimensionality

    def edge_lengths(self) -> np.ndarray:
        """Subdomain edge lengths per axis."""
        return self.box.lengths / np.asarray(self.counts, dtype=np.float64)

    # --- indexing ----------------------------------------------------------

    def coords_of(self, flat: np.ndarray) -> np.ndarray:
        """Flat subdomain ids -> integer ``(sx, sy, sz)`` coordinates."""
        flat = np.asarray(flat, dtype=np.int64)
        _, ny, nz = self.counts
        sz = flat % nz
        sy = (flat // nz) % ny
        sx = flat // (nz * ny)
        return np.stack([sx, sy, sz], axis=-1)

    def flat_of(self, coords: np.ndarray) -> np.ndarray:
        """Integer coordinates -> flat ids (no wrapping)."""
        coords = np.asarray(coords, dtype=np.int64)
        _, ny, nz = self.counts
        return (coords[..., 0] * ny + coords[..., 1]) * nz + coords[..., 2]

    def subdomain_of_positions(self, positions: np.ndarray) -> np.ndarray:
        """Flat subdomain id containing each (wrapped) position."""
        positions = self.box.wrap(np.asarray(positions, dtype=np.float64))
        edges = self.edge_lengths()
        coords = np.floor(positions / edges).astype(np.int64)
        coords = np.clip(coords, 0, np.asarray(self.counts) - 1)
        return self.flat_of(coords)

    def bounds_of(self, flat: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` corner coordinates of one subdomain."""
        coords = self.coords_of(np.asarray([flat]))[0]
        edges = self.edge_lengths()
        lo = coords * edges
        return lo, lo + edges

    # --- adjacency ----------------------------------------------------------

    def neighbor_subdomains(self, flat: int) -> np.ndarray:
        """Flat ids of the grid neighbors of a subdomain (27-stencil, wrapped).

        Neighbors through periodic wrap are included on periodic axes; the
        subdomain itself is excluded; duplicates from small counts are
        removed.
        """
        coords = self.coords_of(np.asarray([flat]))[0]
        counts = np.asarray(self.counts, dtype=np.int64)
        found = set()
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    target = coords + np.array([dx, dy, dz])
                    ok = True
                    for axis in range(3):
                        if self.box.periodic[axis]:
                            target[axis] %= counts[axis]
                        elif not 0 <= target[axis] < counts[axis]:
                            ok = False
                            break
                    if ok:
                        fid = int(self.flat_of(target))
                        if fid != flat:
                            found.add(fid)
        return np.array(sorted(found), dtype=np.int64)

    def adjacency_pairs(self) -> list[tuple[int, int]]:
        """All undirected adjacent subdomain pairs (for coloring validation)."""
        pairs = set()
        for s in range(self.n_subdomains):
            for t in self.neighbor_subdomains(s):
                pairs.add((min(s, int(t)), max(s, int(t))))
        return sorted(pairs)


def max_even_count(length: float, reach: float) -> int:
    """Largest even subdomain count along an axis of ``length``.

    The count must keep the edge strictly longer than ``2 * reach``; returns
    0 if not even 2 subdomains fit.
    """
    if reach <= 0:
        raise ValueError("reach must be positive")
    limit = length / (2.0 * reach)
    count = int(math.ceil(limit)) - 1  # largest int with edge strictly > 2*reach
    while count >= 1 and not (length / count > 2.0 * reach):
        count -= 1
    count -= count % 2  # force even
    return max(count, 0)


def decompose(
    box: Box,
    reach: float,
    dims: int,
    axes: Optional[Sequence[int]] = None,
    max_per_axis: Optional[int] = None,
) -> SubdomainGrid:
    """Decompose ``box`` into an SDC-valid subdomain grid.

    Parameters
    ----------
    reach:
        interaction reach (cutoff + skin) governing the ``> 2*reach``
        constraint.
    dims:
        1, 2 or 3 — how many axes to decompose (the paper's three variants).
    axes:
        which axes to decompose; defaults to the ``dims`` longest axes
        (more room means more subdomains).
    max_per_axis:
        optional even upper bound on per-axis counts (used by ablation
        studies); the constraint-maximal count is the default because more
        subdomains mean more exploitable parallelism.

    Raises
    ------
    DecompositionError
        if any selected axis cannot host at least 2 subdomains.
    """
    if dims not in (1, 2, 3):
        raise ValueError(f"dims must be 1, 2 or 3, got {dims}")
    if axes is None:
        axes = list(np.argsort(box.lengths)[::-1][:dims])
    axes = [int(a) for a in axes]
    if len(axes) != dims or len(set(axes)) != dims:
        raise ValueError(f"axes must be {dims} distinct axes, got {axes}")
    if any(a not in (0, 1, 2) for a in axes):
        raise ValueError(f"axes must be in (0, 1, 2), got {axes}")
    counts = [1, 1, 1]
    for axis in axes:
        count = max_even_count(float(box.lengths[axis]), reach)
        if max_per_axis is not None:
            if max_per_axis < 2 or max_per_axis % 2 != 0:
                raise ValueError("max_per_axis must be an even int >= 2")
            count = min(count, max_per_axis)
        if count < 2:
            raise DecompositionError(
                f"axis {axis} (length {box.lengths[axis]:.3f}) cannot fit two "
                f"subdomains longer than 2*reach = {2 * reach:.3f}"
            )
        counts[axis] = count
    return SubdomainGrid(box=box, counts=tuple(counts), reach=reach)


def decompose_balanced(
    box: Box,
    reach: float,
    dims: int,
    n_threads: int,
    axes: Optional[Sequence[int]] = None,
) -> SubdomainGrid:
    """Decompose while balancing same-color subdomains over ``n_threads``.

    The paper balances load by making "subdomains with same color have
    roughly equal volume" and picking decompositions whose per-color
    subdomain count divides evenly over the threads.  This chooses, among
    all constraint-respecting even per-axis counts, the grid minimizing the
    static-schedule imbalance ``ceil(S/p) * p / S`` (``S`` = subdomains per
    color), breaking ties toward more subdomains (smaller, cachier
    subdomains).

    Raises :class:`DecompositionError` when no valid grid exists.
    """
    if dims not in (1, 2, 3):
        raise ValueError(f"dims must be 1, 2 or 3, got {dims}")
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if axes is None:
        axes = list(np.argsort(box.lengths)[::-1][:dims])
    axes = [int(a) for a in axes]
    max_counts = {}
    for axis in axes:
        count = max_even_count(float(box.lengths[axis]), reach)
        if count < 2:
            raise DecompositionError(
                f"axis {axis} (length {box.lengths[axis]:.3f}) cannot fit two "
                f"subdomains longer than 2*reach = {2 * reach:.3f}"
            )
        max_counts[axis] = count

    def candidates(axis: int) -> Iterable[int]:
        return range(2, max_counts[axis] + 1, 2)

    best: Optional[Tuple[float, int, Tuple[int, int, int]]] = None
    import itertools

    for combo in itertools.product(*(candidates(a) for a in axes)):
        counts = [1, 1, 1]
        for axis, c in zip(axes, combo):
            counts[axis] = c
        total = counts[0] * counts[1] * counts[2]
        per_color = total // (2 ** dims)
        makespan_tasks = -(-per_color // n_threads)  # ceil
        imbalance = makespan_tasks * n_threads / per_color
        key = (imbalance, -total, tuple(counts))
        if best is None or key < best:
            best = key
    assert best is not None
    return SubdomainGrid(box=box, counts=best[2], reach=reach)


def parallel_degree(grid: SubdomainGrid) -> int:
    """Subdomains per color — the maximum exploitable thread count.

    The paper: *"If the number of subdomains with one color is adequate for
    threads provided by multi-core platforms, then our method can ...
    effectively exploit multi-core architectures."*  1-D SDC's blank table
    cells are exactly the cases where this number is below the thread count.
    """
    return grid.n_subdomains // grid.n_colors
