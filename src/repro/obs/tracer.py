"""Span-based runtime tracing — real timestamps for every execution unit.

The profiling layer (:mod:`repro.utils.profiler`) answers *how much* time
each phase costs in aggregate; this module answers *who ran what when*.  A
:class:`Tracer` records :class:`Span` objects — named, real-timestamped
intervals on a (pid, track) timeline — from four sources:

* strategy regions (``ReductionStrategy._span``: color phases, merges,
  lock sections);
* backend execution (:class:`TracingObserver` on the
  :class:`~repro.parallel.backends.base.PhaseObserver` hook surface:
  per-task spans on the worker that ran them, plus a synthesized
  barrier-wait span per task from its end to the phase barrier);
* the MD driver (per-step spans, neighbor rebuilds);
* forked process workers, whose spans ship back with their results and are
  clock-aligned to the parent by :func:`align_worker_spans`.

All timestamps are ``time.perf_counter()`` — the same clock domain as the
profiler and (since this PR) the execution-event log — so spans, events
and phase totals can be laid on one timeline.  The Chrome trace-event /
Perfetto exporter lives in :mod:`repro.obs.exporters`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Tracer",
    "TracingObserver",
    "align_worker_spans",
    "CAT_PHASE",
    "CAT_TASK",
    "CAT_BARRIER",
    "CAT_REGION",
    "CAT_MD",
    "CAT_COUNTER",
]

#: span categories (the ``cat`` field of the exported trace events)
CAT_PHASE = "phase"
CAT_TASK = "task"
CAT_BARRIER = "barrier"
CAT_REGION = "region"
CAT_MD = "md"
#: zero-duration counter samples (exported as Chrome ``ph:"C"`` events);
#: ``args["value"]`` carries the sampled value, ``name`` the counter track
CAT_COUNTER = "counter"


@dataclass(frozen=True)
class Span:
    """One named interval on one track of the execution timeline.

    Attributes
    ----------
    name:
        human-readable label (``"density:color0"``, ``"task 3.1"``, ...).
    category:
        one of the ``CAT_*`` constants (drives trace-viewer grouping).
    start_s:
        ``time.perf_counter()`` at span begin, parent clock domain.
    duration_s:
        span length in seconds (>= 0).
    pid:
        OS process id the span executed in.
    track:
        timeline row — a thread name in-process, ``"worker-<pid>"`` for
        forked workers.
    args:
        small JSON-serializable payload (color index, task id, ...).
    """

    name: str
    category: str
    start_s: float
    duration_s: float
    pid: int
    track: str
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def shifted(self, offset_s: float) -> "Span":
        """The same span translated by ``offset_s`` (clock alignment)."""
        if offset_s == 0.0:
            return self
        return Span(
            name=self.name,
            category=self.category,
            start_s=self.start_s + offset_s,
            duration_s=self.duration_s,
            pid=self.pid,
            track=self.track,
            args=self.args,
        )


class Tracer:
    """Thread-safe append-only span recorder.

    The hot-path contract is: *absent* tracer means zero overhead (the
    instrumented code keeps a ``None`` check and a no-op context manager),
    a *present* tracer means two clock reads and one list append per span.

    A thread-local region stack tracks the innermost open ``span()`` so
    observers can label backend phases after the strategy region they run
    under (``density:color2/phase7`` instead of a bare index).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._tls = threading.local()

    # --- recording ------------------------------------------------------------

    def record(self, span: Span) -> None:
        """Append one finished span."""
        with self._lock:
            self._spans.append(span)

    def add(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        track: Optional[str] = None,
        pid: Optional[int] = None,
        **args: object,
    ) -> Span:
        """Build and record a span; defaults to the current thread/process."""
        span = Span(
            name=name,
            category=category,
            start_s=start_s,
            duration_s=max(0.0, duration_s),
            pid=os.getpid() if pid is None else pid,
            track=(
                threading.current_thread().name if track is None else track
            ),
            args=dict(args),
        )
        self.record(span)
        return span

    @contextmanager
    def span(
        self, name: str, category: str = CAT_REGION, **args: object
    ) -> Iterator[None]:
        """Context manager recording one span around its body."""
        stack = self._region_stack()
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            stack.pop()
            self.add(name, category, start, end - start, **args)

    # --- region labels ----------------------------------------------------------

    def _region_stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_region(self) -> Optional[str]:
        """Innermost open ``span()`` name on this thread (None outside)."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    # --- access -----------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Snapshot of everything recorded so far."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def by_category(self, category: str) -> List[Span]:
        """All recorded spans of one category, in record order."""
        return [s for s in self.spans if s.category == category]

    def total(self, category: str) -> float:
        """Summed duration of one category's spans."""
        return sum(s.duration_s for s in self.by_category(category))


class TracingObserver:
    """Backend observer turning phase/task hooks into timeline spans.

    Implements the :class:`~repro.parallel.backends.base.PhaseObserver`
    surface structurally (hooks only, no isinstance — mirrors
    :class:`~repro.utils.profiler.ProfilingObserver`).  Per backend phase
    it records:

    * one ``task p.t`` span per task, on the worker track that ran it;
    * one ``phase`` span on the dispatching track, labeled after the
      strategy region open at phase begin when there is one;
    * one ``barrier-wait`` span per worker track, covering the interval
      between that worker's *last* task end and the phase barrier — the
      per-worker slack the load-imbalance metrics aggregate.  (Per track,
      not per task: a worker that ran several tasks back-to-back only
      waited once, and per-task spans would overlap its later slices.)
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._lock = threading.Lock()
        #: phase -> (start_s, region label at begin)
        self._phase_start: Dict[int, Tuple[float, Optional[str]]] = {}
        #: (phase, task) -> start_s
        self._task_start: Dict[Tuple[int, int], float] = {}
        #: phase -> [(task, start_s, end_s, track, pid)]
        self._task_done: Dict[int, List[Tuple[int, float, float, str, int]]] = {}

    def on_phase_begin(self, phase: int, n_tasks: int) -> None:
        with self._lock:
            self._phase_start[phase] = (
                time.perf_counter(),
                self.tracer.current_region(),
            )
            self._task_done[phase] = []

    def on_task_begin(self, phase: int, task: int) -> None:
        with self._lock:
            self._task_start[(phase, task)] = time.perf_counter()

    def on_task_end(self, phase: int, task: int) -> None:
        end = time.perf_counter()
        track = threading.current_thread().name
        pid = os.getpid()
        with self._lock:
            start = self._task_start.pop((phase, task), None)
            if start is None:
                return
            done = self._task_done.get(phase)
            if done is not None:
                done.append((task, start, end, track, pid))
        self.tracer.add(
            f"task {phase}.{task}",
            CAT_TASK,
            start,
            end - start,
            track=track,
            pid=pid,
            phase=phase,
            task=task,
        )

    def on_phase_end(self, phase: int) -> None:
        end = time.perf_counter()
        with self._lock:
            start, region = self._phase_start.pop(phase, (None, None))
            done = self._task_done.pop(phase, [])
        if start is None:
            return
        label = f"{region}/phase{phase}" if region else f"phase{phase}"
        self.tracer.add(
            label,
            CAT_PHASE,
            start,
            end - start,
            phase=phase,
            n_tasks=len(done),
        )
        last_on_track: Dict[str, Tuple[float, int]] = {}
        for _, _, task_end, track, pid in done:
            prev = last_on_track.get(track)
            if prev is None or task_end > prev[0]:
                last_on_track[track] = (task_end, pid)
        for track, (task_end, pid) in last_on_track.items():
            wait = end - task_end
            if wait <= 0.0:
                continue
            self.tracer.add(
                "barrier-wait",
                CAT_BARRIER,
                task_end,
                wait,
                track=track,
                pid=pid,
                phase=phase,
            )


def align_worker_spans(
    spans: Sequence[Span],
    worker_origin_s: float,
    window_start_s: float,
    window_end_s: float,
) -> List[Span]:
    """Translate worker-recorded spans into the parent's clock domain.

    ``worker_origin_s`` is the worker's ``perf_counter()`` sampled when it
    picked up the work; ``window_start_s``/``window_end_s`` bracket the
    parent's dispatch of that work.  On Linux ``perf_counter`` is
    ``CLOCK_MONOTONIC``, which survives ``fork`` — the origin then falls
    inside the dispatch window and no shift is applied.  When the clock
    domains differ (spawned workers, exotic platforms) the origin lands
    outside the window and the worker timeline is pinned to the dispatch
    start instead.
    """
    if window_start_s <= worker_origin_s <= window_end_s:
        offset = 0.0
    else:
        offset = window_start_s - worker_origin_s
    return [span.shifted(offset) for span in spans]
