"""Self-contained HTML performance dashboard (inline SVG, no deps).

``repro report`` renders one static page from the run artifacts and the
history store:

* **speedup panel** — speedup-vs-threads curves per strategy × backend,
  normalized to the serial/serial cell of the same case (the Fig. 5–9
  presentation of the paper);
* **strategy panel** — total-median comparison bars per case;
* **amortization panel** — first-step vs amortized per-step cost of the
  persistent engines, from ``repro bench --steps`` runs;
* **imbalance panel** — the measured load-imbalance ratios, barrier
  slack, and halo fraction already computed by
  :class:`~repro.obs.metrics.MetricsRegistry`;
* **trend panel** — run-over-run total-median sparklines from the
  :class:`~repro.obs.history.RunStore`;
* **regressions panel** — the verdict table of ``repro compare`` when a
  comparison was run;
* **health panel** — the flight-recorder digest from ``health.jsonl``
  (event counts per category/severity, engine restarts, kernel-tier
  fallbacks, physics invariant breaches);
* **meta panel** — the environment block of the newest artifact.

The output is strict XHTML (every tag closed, all dynamic text escaped)
so it parses with any XML parser — that well-formedness is part of the
test contract.  Every chart keeps a table view beside it, series colors
come from a fixed-order validated palette, and dark mode swaps the same
roles via ``prefers-color-scheme``.  :func:`render_text_summary` is the
terminal/markdown counterpart for report consumers without a browser.
"""

from __future__ import annotations

import html
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.atomicio import atomic_write_text
from repro.obs.history import RunStore

__all__ = [
    "ReportData",
    "load_report_source",
    "render_html",
    "render_text_summary",
    "write_report",
]

#: fixed-order categorical palette (light / dark steps of the same hues)
_PALETTE_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_PALETTE_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)
#: series past the palette fold into this neutral
_FOLD_COLOR_LIGHT = "#8a8985"
_FOLD_COLOR_DARK = "#8a8985"


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


@dataclass
class ReportData:
    """Everything the dashboard draws, already joined and ordered."""

    meta: Dict[str, object] = field(default_factory=dict)
    bench_records: List[Dict[str, object]] = field(default_factory=list)
    reordering_records: List[Dict[str, object]] = field(default_factory=list)
    #: per-cell kernel-tier speedups (``repro bench --speedup-vs``)
    tier_speedup_records: List[Dict[str, object]] = field(default_factory=list)
    #: worker-sweep efficiency records (``repro scale``)
    scaling_records: List[Dict[str, object]] = field(default_factory=list)
    metrics_records: List[Dict[str, object]] = field(default_factory=list)
    runlog_records: List[Dict[str, object]] = field(default_factory=list)
    #: health.jsonl stream: the ``health-meta`` header + event records
    health_records: List[Dict[str, object]] = field(default_factory=list)
    #: (case, strategy, backend, n_workers, kernel_tier) ->
    #: [(seq, total median_s)]
    trend: Dict[
        Tuple[str, str, str, int, str], List[Tuple[int, float]]
    ] = field(default_factory=dict)
    regression: Optional[object] = None  # RegressionReport, kept duck-typed
    source: str = ""

    # --- derived views ---------------------------------------------------------

    def total_cells(self) -> List[Dict[str, object]]:
        """The ``total``-phase bench rows (one per sweep cell)."""
        return [
            r
            for r in self.bench_records
            if r.get("phase") == "total" and "median_s" in r
        ]

    def speedup_series(
        self,
    ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
        """Per case: series label -> sorted (threads, speedup) points.

        Speedup is the serial/serial total median of the same case divided
        by the cell's total median.  Cases without a serial reference are
        omitted — there is nothing to normalize against.
        """
        serial_ref: Dict[str, float] = {}
        for r in self.total_cells():
            if r.get("strategy") == "serial" and r.get("backend") == "serial":
                serial_ref[str(r["case"])] = float(r["median_s"])
        out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
        for r in self.total_cells():
            case = str(r["case"])
            ref = serial_ref.get(case)
            median = float(r["median_s"])
            if ref is None or median <= 0.0:
                continue
            label = f"{r['strategy']}/{r['backend']}"
            tier = str(r.get("kernel_tier", "numpy"))
            if tier != "numpy":
                label = f"{label}/{tier}"
            out.setdefault(case, {}).setdefault(label, []).append(
                (int(r["n_workers"]), ref / median)
            )
        for case_series in out.values():
            for points in case_series.values():
                points.sort()
        return out

    def amortization_rows(self) -> List[Dict[str, object]]:
        """First-step vs amortized per-step cost per repeated-compute cell.

        Joins the ``first_step`` and ``amortized`` phase rows emitted by
        ``repro bench --steps`` on (case, strategy, backend, n_workers);
        cells missing either half are dropped.  Speedup is first-step
        cost over amortized per-step cost — how much the persistent
        engine's reused pool/arena/schedule buys after step one.
        """
        cells: Dict[
            Tuple[str, str, str, int], Dict[str, float]
        ] = {}
        for r in self.bench_records:
            phase = r.get("phase")
            if phase not in ("first_step", "amortized"):
                continue
            if "median_s" not in r:
                continue
            key = (
                str(r.get("case", "?")),
                str(r.get("strategy", "?")),
                str(r.get("backend", "?")),
                int(r.get("n_workers", 0)),
            )
            cells.setdefault(key, {})[str(phase)] = float(r["median_s"])
        rows = []
        for key in sorted(cells):
            pair = cells[key]
            if "first_step" not in pair or "amortized" not in pair:
                continue
            first, amortized = pair["first_step"], pair["amortized"]
            rows.append(
                {
                    "case": key[0],
                    "strategy": key[1],
                    "backend": key[2],
                    "n_workers": key[3],
                    "first_step_s": first,
                    "amortized_s": amortized,
                    "speedup": first / amortized if amortized > 0 else 0.0,
                }
            )
        return rows

    def imbalance_rows(self) -> List[Dict[str, object]]:
        """Measured per-phase imbalance joined with its barrier slack."""
        slack: Dict[Tuple[object, object], float] = {}
        for m in self.metrics_records:
            if m.get("metric") == "phase_barrier_slack_s":
                slack[(m.get("run"), m.get("phase"))] = float(m["value"])
        rows = [
            {
                "run": m.get("run", "?"),
                "phase": m.get("phase_name", m.get("phase", "?")),
                "n_tasks": m.get("n_tasks", "?"),
                "ratio": float(m["value"]),
                "slack_s": slack.get((m.get("run"), m.get("phase")), 0.0),
            }
            for m in self.metrics_records
            if m.get("metric") == "phase_load_imbalance_measured"
        ]
        rows.sort(key=lambda r: r["ratio"], reverse=True)
        return rows

    def halo_fractions(self) -> Dict[str, float]:
        """Halo fraction per run — per shard when the records carry the
        sharded engine's ``shard`` label (shardless rows keep the bare
        run key, so pre-shard metric streams render unchanged)."""
        out: Dict[str, float] = {}
        for m in self.metrics_records:
            if m.get("metric") != "halo_fraction":
                continue
            key = str(m.get("run", "?"))
            if "shard" in m:
                key = f"{key} [shard {m['shard']}]"
            out[key] = float(m["value"])
        return out

    def scaling_groups(
        self,
    ) -> Dict[Tuple[str, str, str, str], List[Dict[str, object]]]:
        """Scaling records per sweep: (case, strategy, backend, tier) ->
        records sorted by worker count."""
        out: Dict[Tuple[str, str, str, str], List[Dict[str, object]]] = {}
        for r in self.scaling_records:
            if "speedup" not in r or "n_workers" not in r:
                continue
            key = (
                str(r.get("case", "?")),
                str(r.get("strategy", "?")),
                str(r.get("backend", "?")),
                str(r.get("kernel_tier", "numpy")),
            )
            out.setdefault(key, []).append(r)
        for records in out.values():
            records.sort(key=lambda r: int(r["n_workers"]))
        return out

    def health_meta(self) -> Dict[str, object]:
        """The ``health-meta`` header of the ingested health stream."""
        for r in self.health_records:
            if r.get("kind") == "health-meta":
                return r
        return {}

    def health_events(
        self, min_severity: str = "debug"
    ) -> List[Dict[str, object]]:
        """The health event records at or above ``min_severity``."""
        from repro.obs.recorder import severity_rank

        floor = severity_rank(min_severity)
        return [
            r
            for r in self.health_records
            if r.get("kind") == "health"
            and severity_rank(str(r.get("severity", "info"))) >= floor
        ]


def load_report_source(
    source,
    store_path: Optional[str] = None,
    regression: Optional[object] = None,
) -> ReportData:
    """Assemble :class:`ReportData` from a directory or a history store.

    A directory source reads the per-run artifacts it contains
    (``BENCH_forces.json``, ``BENCH_reordering.json``, ``metrics.jsonl``,
    ``run.jsonl``, ``health.jsonl``) plus ``history.jsonl`` /
    ``.repro/history.jsonl`` for
    the trend panel; a ``.jsonl`` file source is treated as a history
    store and the newest entry of each kind becomes the "current" run.
    """
    source = os.fspath(source)
    data = ReportData(source=source, regression=regression)
    store: Optional[RunStore] = None
    if os.path.isdir(source):
        bench_path = os.path.join(source, "BENCH_forces.json")
        if os.path.exists(bench_path):
            with open(bench_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            data.meta = dict(payload.get("meta", {}))
            data.bench_records = list(payload.get("records", []))
        reorder_path = os.path.join(source, "BENCH_reordering.json")
        if os.path.exists(reorder_path):
            with open(reorder_path, "r", encoding="utf-8") as handle:
                data.reordering_records = list(
                    json.load(handle).get("records", [])
                )
        tier_path = os.path.join(source, "BENCH_tier_speedup.json")
        if os.path.exists(tier_path):
            with open(tier_path, "r", encoding="utf-8") as handle:
                data.tier_speedup_records = list(
                    json.load(handle).get("records", [])
                )
        scaling_path = os.path.join(source, "scaling.json")
        if os.path.exists(scaling_path):
            with open(scaling_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            data.scaling_records = list(payload.get("records", []))
            if not data.meta:
                data.meta = dict(payload.get("meta", {}))
        for name, attr in (
            ("metrics.jsonl", "metrics_records"),
            ("run.jsonl", "runlog_records"),
            ("health.jsonl", "health_records"),
        ):
            path = os.path.join(source, name)
            if os.path.exists(path):
                setattr(data, attr, _read_jsonl(path))
        for candidate in (
            store_path,
            os.path.join(source, "history.jsonl"),
            os.path.join(source, ".repro", "history.jsonl"),
        ):
            if candidate is not None and os.path.exists(candidate):
                store = RunStore(candidate)
                break
    else:
        store = RunStore(store_path if store_path is not None else source)
        latest_bench = store.latest("bench")
        if latest_bench is not None:
            data.meta = latest_bench.meta
            data.bench_records = latest_bench.records
        latest_metrics = store.latest("metrics")
        if latest_metrics is not None:
            data.metrics_records = latest_metrics.records
        latest_runlog = store.latest("runlog")
        if latest_runlog is not None:
            data.runlog_records = latest_runlog.records
        latest_reorder = store.latest("reordering")
        if latest_reorder is not None:
            data.reordering_records = latest_reorder.records
        latest_tier = store.latest("tier-speedup")
        if latest_tier is not None:
            data.tier_speedup_records = latest_tier.records
        latest_scaling = store.latest("scaling")
        if latest_scaling is not None:
            data.scaling_records = latest_scaling.records
            if not data.meta:
                data.meta = latest_scaling.meta
        latest_health = store.latest("health")
        if latest_health is not None:
            data.health_records = latest_health.records
    if store is not None:
        for key, points in store.series("bench").items():
            data.trend[key] = [
                (seq, float(r["median_s"]))
                for seq, r in points
                if "median_s" in r
            ]
    if not data.meta and data.runlog_records:
        for record in data.runlog_records:
            if record.get("kind") == "meta":
                data.meta = {
                    k: v for k, v in record.items() if k not in ("kind", "t")
                }
                break
    return data


def _read_jsonl(path) -> List[Dict[str, object]]:
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# --- SVG building blocks -------------------------------------------------------


def _series_class(index: int) -> str:
    return f"s{index}" if index < len(_PALETTE_LIGHT) else "sfold"


def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return f"{value:.3g}"


def _svg_line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    width: int = 420,
    height: int = 260,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series line chart: 2px lines, 8px markers, recessive grid."""
    pad_l, pad_r, pad_t, pad_b = 46, 12, 10, 34
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    if not xs:
        return (
            f'<svg class="chart" width="{width}" height="{height}" '
            f'xmlns="http://www.w3.org/2000/svg" role="img">'
            f'<text x="{width // 2}" y="{height // 2}" '
            f'class="axis" text-anchor="middle">(no data)</text></svg>'
        )
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.1

    def sx(x: float) -> float:
        span = (x_hi - x_lo) or 1.0
        return pad_l + (x - x_lo) / span * plot_w

    def sy(y: float) -> float:
        span = (y_hi - y_lo) or 1.0
        return pad_t + plot_h - (y - y_lo) / span * plot_h

    parts = [
        f'<svg class="chart" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(
            f'<line class="grid" x1="{pad_l}" y1="{y:.1f}" '
            f'x2="{width - pad_r}" y2="{y:.1f}" />'
        )
        parts.append(
            f'<text class="axis" x="{pad_l - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    for tick in sorted(set(xs)):
        x = sx(tick)
        parts.append(
            f'<text class="axis" x="{x:.1f}" y="{height - pad_b + 16}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    parts.append(
        f'<line class="axisline" x1="{pad_l}" y1="{pad_t + plot_h}" '
        f'x2="{width - pad_r}" y2="{pad_t + plot_h}" />'
    )
    for index, (label, pts) in enumerate(series):
        cls = _series_class(index)
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline class="line {cls}" points="{coords}" fill="none" />'
        )
        for x, y in pts:
            parts.append(
                f'<circle class="dot {cls}" cx="{sx(x):.1f}" '
                f'cy="{sy(y):.1f}" r="4">'
                f"<title>{_esc(label)}: x={_fmt(x)}, y={_fmt(y)}</title>"
                f"</circle>"
            )
        lx, ly = pts[-1]
        if len(series) <= 4:
            parts.append(
                f'<text class="serieslabel {cls}" x="{sx(lx) + 7:.1f}" '
                f'y="{sy(ly) - 6:.1f}">{_esc(label)}</text>'
            )
    if x_label:
        parts.append(
            f'<text class="axis" x="{pad_l + plot_w / 2:.1f}" '
            f'y="{height - 4}" text-anchor="middle">{_esc(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text class="axis" transform="rotate(-90)" '
            f'x="{-(pad_t + plot_h / 2):.1f}" y="12" '
            f'text-anchor="middle">{_esc(y_label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_hbar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 460,
    bar_h: int = 18,
    unit: str = "",
    color_indices: Optional[Sequence[int]] = None,
) -> str:
    """Horizontal comparison bars with value labels, baseline-anchored."""
    if not rows:
        return '<p class="muted">(no data)</p>'
    label_w, value_w, pad = 190, 80, 4
    plot_w = width - label_w - value_w
    height = len(rows) * (bar_h + pad) + pad
    v_max = max(v for _, v in rows) or 1.0
    parts = [
        f'<svg class="chart" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    for i, (label, value) in enumerate(rows):
        y = pad + i * (bar_h + pad)
        w = max(1.0, value / v_max * plot_w)
        cls = _series_class(
            color_indices[i] if color_indices is not None else i
        )
        parts.append(
            f'<text class="axis" x="{label_w - 6}" '
            f'y="{y + bar_h / 2 + 3:.1f}" text-anchor="end">'
            f"{_esc(label)}</text>"
        )
        parts.append(
            f'<rect class="bar {cls}" x="{label_w}" y="{y}" '
            f'width="{w:.1f}" height="{bar_h}" rx="4">'
            f"<title>{_esc(label)}: {_fmt(value)}{_esc(unit)}</title></rect>"
        )
        parts.append(
            f'<text class="value" x="{label_w + w + 6:.1f}" '
            f'y="{y + bar_h / 2 + 3:.1f}">{_fmt(value)}{_esc(unit)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_sparkline(
    points: Sequence[Tuple[int, float]], width: int = 150, height: int = 34
) -> str:
    """One trend sparkline; last point marked."""
    if not points:
        return '<span class="muted">-</span>'
    xs = [float(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    pad = 5

    def sx(x: float) -> float:
        span = (x_hi - x_lo) or 1.0
        return pad + (x - x_lo) / span * (width - 2 * pad)

    def sy(y: float) -> float:
        span = (y_hi - y_lo) or 1.0
        return pad + (height - 2 * pad) * (1.0 - (y - y_lo) / span)

    coords = " ".join(
        f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">'
        f'<polyline class="line s0" points="{coords}" fill="none" />'
        f'<circle class="dot s0" cx="{sx(xs[-1]):.1f}" '
        f'cy="{sy(ys[-1]):.1f}" r="3">'
        f"<title>latest: {_fmt(ys[-1])} s</title></circle>"
        f"</svg>"
    )


def _legend(labels: Sequence[str]) -> str:
    if len(labels) < 2:
        return ""
    items = "".join(
        f'<span class="legenditem"><span class="swatch '
        f'{_series_class(i)}"></span>{_esc(label)}</span>'
        for i, label in enumerate(labels)
    )
    return f'<div class="legend">{items}</div>'


def _table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f'<table><thead><tr>{head}</tr></thead>'
        f"<tbody>{body}</tbody></table>"
    )


# --- panels --------------------------------------------------------------------


def _panel(panel_id: str, title: str, body: str, note: str = "") -> str:
    note_html = f'<p class="muted">{_esc(note)}</p>' if note else ""
    return (
        f'<section class="panel" id="{panel_id}">'
        f"<h2>{_esc(title)}</h2>{note_html}{body}</section>"
    )


def _speedup_panel(data: ReportData) -> str:
    per_case = data.speedup_series()
    if not per_case:
        return _panel(
            "panel-speedup",
            "Speedup vs threads",
            '<p class="muted">(no bench records with a serial reference)</p>',
        )
    charts = []
    for case, series_map in sorted(per_case.items()):
        labels = sorted(series_map)
        series = [(label, series_map[label]) for label in labels]
        table_rows = [
            (label, _fmt(float(x)), f"{y:.2f}x")
            for label, pts in series
            for x, y in pts
        ]
        charts.append(
            f'<figure><figcaption>case {_esc(case)}</figcaption>'
            + _svg_line_chart(
                series, x_label="threads", y_label="speedup vs serial"
            )
            + _legend(labels)
            + f'<details><summary>data</summary>'
            + _table(("series", "threads", "speedup"), table_rows)
            + "</details></figure>"
        )
    return _panel(
        "panel-speedup",
        "Speedup vs threads",
        "".join(charts),
        note="Total-phase median of each strategy x backend cell, "
        "normalized to the serial/serial cell of the same case "
        "(the paper's Fig. 5-9 presentation).",
    )


def _tier_speedup_panel(data: ReportData) -> str:
    rows = [
        r for r in data.tier_speedup_records if "speedup" in r
    ]
    if not rows:
        return ""
    table_rows = [
        (
            r.get("case", ""),
            f"{r.get('strategy', '')}/{r.get('backend', '')}"
            f"/w{r.get('n_workers', '')}",
            r.get("kernel_tier", ""),
            r.get("reference_tier", ""),
            f"{float(r['median_s']) * 1e3:.3f} ms",
            f"{float(r['reference_median_s']) * 1e3:.3f} ms",
            f"{float(r['speedup']):.2f}x",
        )
        for r in rows
    ]
    return _panel(
        "panel-tier-speedup",
        "Kernel-tier speedup",
        _table(
            ("case", "cell", "tier", "vs", "median", "ref median", "speedup"),
            table_rows,
        ),
        note="End-to-end phase medians of the same sweep cell on two "
        "kernel tiers (repro bench --kernel-tier X --speedup-vs Y); "
        "speedup > 1 means the candidate tier is faster.",
    )


#: loss mechanisms of the scaling records, display order = palette order
_LOSS_LABELS = (
    ("serial", "serial fraction"),
    ("imbalance", "load imbalance"),
    ("barrier", "barrier slack"),
    ("resource_pressure", "resource pressure"),
    ("excess_work", "excess work"),
)


def _scaling_panel(data: ReportData) -> str:
    groups = data.scaling_groups()
    if not groups:
        return ""
    charts = []
    for key, records in sorted(groups.items()):
        case, strategy, backend, tier = key
        label = f"{case}/{strategy}/{backend}"
        if tier != "numpy":
            label += f"/{tier}"
        measured = [
            (float(int(r["n_workers"])), float(r["speedup"]))
            for r in records
        ]
        ideal = [(x, x) for x, _ in measured]
        chart = _svg_line_chart(
            [("measured", measured), ("ideal", ideal)],
            x_label="workers",
            y_label="speedup",
        )
        table_rows = []
        for r in records:
            kf = r.get("karp_flatt")
            table_rows.append(
                (
                    r.get("n_workers", "?"),
                    f"{float(r.get('median_s', 0.0)):.4f} s",
                    f"{float(r['speedup']):.2f}x",
                    f"{float(r.get('efficiency', 0.0)):.1%}",
                    f"{float(kf):.3f}" if kf is not None else "-",
                    r.get("dominant_loss") or "-",
                )
            )
        bar_rows: List[Tuple[str, float]] = []
        color_idx: List[int] = []
        for r in records:
            p = r.get("n_workers", "?")
            for ci, (loss_key, loss_label) in enumerate(_LOSS_LABELS):
                value = float(r.get(f"loss_{loss_key}", 0.0) or 0.0)
                if value > 0.005:
                    bar_rows.append((f"w{p} {loss_label}", value * 100.0))
                    color_idx.append(ci)
        bars = (
            _svg_hbar_chart(bar_rows, unit="%", color_indices=color_idx)
            if bar_rows
            else '<p class="muted">(no attributable losses)</p>'
        )
        charts.append(
            f"<figure><figcaption>{_esc(label)}</figcaption>"
            + chart
            + _legend(["measured", "ideal"])
            + "</figure>"
            + f"<figure><figcaption>{_esc(label)}: lost core-seconds "
            f"(% of p x T(p))</figcaption>" + bars + "</figure>"
            + _table(
                (
                    "workers",
                    "T(p)",
                    "speedup",
                    "efficiency",
                    "Karp-Flatt",
                    "dominant loss",
                ),
                table_rows,
            )
        )
    return _panel(
        "panel-scaling",
        "Scaling efficiency and loss attribution",
        "".join(charts),
        note="From repro scale: speedup S(p)=T(1)/T(p), efficiency "
        "E(p)=S(p)/p, and the Karp-Flatt experimentally-determined "
        "serial fraction e(p)=(1/S-1/p)/(1-1/p). Lost core-seconds are "
        "attributed to serial sections, task load imbalance, residual "
        "barrier slack, resource pressure (sampled sub-100% worker "
        "CPU), and excess work vs the 1-worker baseline.",
    )


def _strategy_panel(data: ReportData) -> str:
    cells = data.total_cells()
    if not cells:
        return _panel(
            "panel-strategies",
            "Strategy comparison",
            '<p class="muted">(no bench records)</p>',
        )
    charts = []
    by_case: Dict[str, List[Dict[str, object]]] = {}
    for r in cells:
        by_case.setdefault(str(r["case"]), []).append(r)
    label_order = sorted(
        {
            f"{r['strategy']}/{r['backend']}"
            for r in cells
        }
    )
    color_of = {label: i for i, label in enumerate(label_order)}
    for case, rows in sorted(by_case.items()):
        bar_rows = sorted(
            (
                (
                    f"{r['strategy']}/{r['backend']} "
                    f"(w{r['n_workers']})",
                    float(r["median_s"]) * 1e3,
                    color_of[f"{r['strategy']}/{r['backend']}"],
                )
                for r in rows
            ),
            key=lambda row: row[1],
        )
        charts.append(
            f'<figure><figcaption>case {_esc(case)} '
            f"(total median, ms)</figcaption>"
            + _svg_hbar_chart(
                [(label, v) for label, v, _ in bar_rows],
                unit=" ms",
                color_indices=[c for _, _, c in bar_rows],
            )
            + "</figure>"
        )
    return _panel(
        "panel-strategies", "Strategy comparison", "".join(charts)
    )


def _amortization_panel(data: ReportData) -> str:
    rows = data.amortization_rows()
    if not rows:
        return ""
    bar_rows = [
        (
            f"{r['case']}/{r['strategy']}/{r['backend']} "
            f"(w{r['n_workers']})",
            float(r["speedup"]),
        )
        for r in rows
    ]
    body = (
        _svg_hbar_chart(
            bar_rows, unit="x", color_indices=[2] * len(bar_rows)
        )
        + _table(
            ("cell", "first step", "amortized/step", "speedup"),
            [
                (
                    f"{r['case']}/{r['strategy']}/{r['backend']}"
                    f"/w{r['n_workers']}",
                    f"{float(r['first_step_s']) * 1e3:.3f} ms",
                    f"{float(r['amortized_s']) * 1e3:.3f} ms",
                    f"{float(r['speedup']):.1f}x",
                )
                for r in rows
            ],
        )
    )
    return _panel(
        "panel-amortization",
        "Setup amortization (first step vs steady state)",
        body,
        note="From repro bench --steps: the first compute pays pool "
        "fork, arena allocation, and decomposition; later steps reuse "
        "them and only sync positions. Speedup = first-step cost / "
        "amortized per-step cost.",
    )


def _imbalance_panel(data: ReportData) -> str:
    rows = data.imbalance_rows()
    halo = data.halo_fractions()
    if not rows and not halo:
        return _panel(
            "panel-imbalance",
            "Load imbalance and barrier slack",
            '<p class="muted">(no metrics records — run repro trace '
            "and ingest metrics.jsonl)</p>",
        )
    body = []
    if rows:
        top = rows[:12]
        body.append(
            _svg_hbar_chart(
                [
                    (f"{r['run']} {r['phase']}", float(r["ratio"]))
                    for r in top
                ],
                unit="x",
                color_indices=[0] * len(top),
            )
        )
        body.append(
            _table(
                ("run", "phase", "tasks", "max/mean", "barrier slack"),
                [
                    (
                        r["run"],
                        r["phase"],
                        r["n_tasks"],
                        f"{r['ratio']:.2f}",
                        f"{float(r['slack_s']) * 1e3:.3f} ms",
                    )
                    for r in top
                ],
            )
        )
    if halo:
        body.append(
            _table(
                ("run", "halo fraction"),
                [
                    (run, f"{value:.1%}")
                    for run, value in sorted(halo.items())
                ],
            )
        )
    return _panel(
        "panel-imbalance",
        "Load imbalance and barrier slack",
        "".join(body),
        note="Measured task-duration max/mean per color phase (1.0 = "
        "perfectly balanced) with the summed barrier-wait slack; halo "
        "fraction is the share of pairs crossing subdomain boundaries.",
    )


def _trend_panel(data: ReportData) -> str:
    if not data.trend:
        return _panel(
            "panel-trend",
            "Run-over-run trend",
            '<p class="muted">(history store empty — append runs with '
            "repro bench --store)</p>",
        )
    rows = []
    for key, points in sorted(data.trend.items()):
        case, strategy, backend, workers, tier = key
        if not points:
            continue
        tier_tag = f"/{_esc(tier)}" if tier != "numpy" else ""
        first, last = points[0][1], points[-1][1]
        delta = (last - first) / first * 100 if first > 0 else 0.0
        rows.append(
            "<tr>"
            f"<td>{_esc(case)}/{_esc(strategy)}/{_esc(backend)}"
            f"/w{_esc(workers)}{tier_tag}</td>"
            f"<td>{_svg_sparkline(points)}</td>"
            f"<td>{len(points)}</td>"
            f"<td>{last * 1e3:.3f} ms</td>"
            f"<td>{delta:+.1f}%</td>"
            "</tr>"
        )
    body = (
        "<table><thead><tr><th>cell</th><th>trend</th><th>runs</th>"
        "<th>latest total</th><th>vs first</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    return _panel(
        "panel-trend",
        "Run-over-run trend",
        body,
        note="Total-phase median per sweep cell across the history store, "
        "oldest to newest.",
    )


def _regression_panel(data: ReportData) -> str:
    report = data.regression
    if report is None:
        return ""
    rows = [
        (
            v.label,
            v.phase,
            (
                f"{v.baseline_median_s * 1e3:.3f} ms"
                if v.baseline_median_s is not None
                else "-"
            ),
            f"{v.candidate_median_s * 1e3:.3f} ms",
            (
                f"{v.rel_change * 100:+.1f}%"
                if v.rel_change is not None
                else "-"
            ),
            v.verdict,
        )
        for v in report.verdicts
        if v.gated
    ]
    counts = report.counts()
    summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
    verdict_cls = "bad" if report.hard_regressions else "good"
    status = (
        f"{len(report.hard_regressions)} hard regression(s)"
        if report.hard_regressions
        else "no hard regressions"
    )
    body = (
        f'<p><span class="status {verdict_cls}">{_esc(status)}</span> '
        f"— {_esc(summary)} (threshold "
        f"{report.threshold * 100:.0f}% on gated total-phase cells)</p>"
        + _table(
            ("cell", "phase", "baseline", "candidate", "change", "verdict"),
            rows,
        )
    )
    return _panel("panel-regressions", "Regression verdicts", body)


def _health_panel(data: ReportData) -> str:
    if not data.health_records:
        return ""
    meta = data.health_meta()
    counts = meta.get("counts")
    if not isinstance(counts, Mapping):
        counts = {}
    worst = "info"
    from repro.obs.recorder import severity_rank

    for r in data.health_events():
        sev = str(r.get("severity", "info"))
        if severity_rank(sev) > severity_rank(worst):
            worst = sev
    status_cls = (
        "bad" if severity_rank(worst) >= severity_rank("warning") else "good"
    )
    header = (
        f'<p><span class="status {status_cls}">worst severity: '
        f"{_esc(worst)}</span> — {_esc(meta.get('n_recorded', 0))} events "
        f"recorded, {_esc(meta.get('n_dropped', 0))} evicted from the "
        f"ring</p>"
    )
    count_rows = [
        (key, value)
        for key, value in sorted(counts.items())
        if isinstance(value, int)
    ]
    body = [header]
    if count_rows:
        body.append(_table(("counter", "count"), count_rows))
    notable = data.health_events(min_severity="warning")
    if notable:
        body.append(
            _table(
                ("severity", "category", "event", "detail"),
                [
                    (
                        r.get("severity", ""),
                        r.get("category", ""),
                        r.get("event", ""),
                        ", ".join(
                            f"{k}={v}"
                            for k, v in sorted(r.items())
                            if k
                            not in (
                                "kind",
                                "t",
                                "category",
                                "event",
                                "severity",
                            )
                        ),
                    )
                    for r in notable[-12:]
                ],
            )
        )
    return _panel(
        "panel-health",
        "Runtime health",
        "".join(body),
        note="Flight-recorder digest from health.jsonl: engine/pool "
        "lifecycle, kernel-tier fallbacks, scheduler cache activity, and "
        "physics invariant breaches (see repro doctor / repro health).",
    )


def _meta_panel(data: ReportData) -> str:
    if not data.meta:
        return ""
    items = "".join(
        f"<dt>{_esc(k)}</dt><dd>{_esc(v)}</dd>"
        for k, v in sorted(data.meta.items())
    )
    return _panel("panel-meta", "Environment", f"<dl>{items}</dl>")


_CSS = """
body { background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, sans-serif; margin: 0 auto; max-width: 1080px;
  padding: 16px; }
h1 { font-size: 20px; } h2 { font-size: 16px; }
.panel { background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin: 14px 0; }
.muted { color: var(--muted); font-size: 12px; }
figure { display: inline-block; margin: 6px 12px 6px 0;
  vertical-align: top; }
figcaption { color: var(--text-2); font-size: 12px; margin-bottom: 2px; }
table { border-collapse: collapse; font-size: 12px; margin: 8px 0; }
th, td { border-bottom: 1px solid var(--border); padding: 3px 10px 3px 0;
  text-align: left; color: var(--text-2); }
th { color: var(--text); }
dl { display: grid; grid-template-columns: max-content 1fr;
  gap: 2px 14px; font-size: 12px; }
dt { color: var(--muted); } dd { margin: 0; color: var(--text-2); }
.chart .grid { stroke: var(--border); stroke-width: 1; }
.chart .axisline { stroke: var(--text-2); stroke-width: 1; }
.chart .axis, .chart .value { fill: var(--text-2); font-size: 11px; }
.chart .serieslabel { font-size: 11px; }
.line { stroke-width: 2; } .spark .line { stroke-width: 1.5; }
.legend { font-size: 12px; color: var(--text-2); margin-top: 4px; }
.legenditem { margin-right: 14px; white-space: nowrap; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; }
.status.good { color: var(--good); font-weight: 600; }
.status.bad { color: var(--bad); font-weight: 600; }
"""


def _series_css() -> str:
    rules = []
    for i in range(len(_PALETTE_LIGHT)):
        rules.append(
            f".line.s{i}, .spark .line.s{i} {{ stroke: var(--c{i}); }}\n"
            f".dot.s{i}, .bar.s{i}, .swatch.s{i}, text.serieslabel.s{i} "
            f"{{ fill: var(--c{i}); }}"
        )
    rules.append(
        ".line.sfold { stroke: var(--cfold); }\n"
        ".dot.sfold, .bar.sfold, .swatch.sfold, text.serieslabel.sfold "
        "{ fill: var(--cfold); }"
    )
    return "\n".join(rules)


def _palette_vars(palette: Sequence[str], fold: str) -> str:
    slots = " ".join(f"--c{i}: {hex_};" for i, hex_ in enumerate(palette))
    return f"{slots} --cfold: {fold};"


def _palette_css() -> str:
    light = (
        ":root { color-scheme: light; "
        "--surface: #fcfcfb; --panel: #ffffff; --border: #e3e2de; "
        "--text: #0b0b0b; --text-2: #52514e; --muted: #8a8985; "
        "--good: #008300; --bad: #c5362f; "
        + _palette_vars(_PALETTE_LIGHT, _FOLD_COLOR_LIGHT)
        + " }\n"
    )
    dark = (
        "@media (prefers-color-scheme: dark) { :root { "
        "color-scheme: dark; "
        "--surface: #1a1a19; --panel: #232322; --border: #3a3936; "
        "--text: #ffffff; --text-2: #c3c2b7; --muted: #8a8985; "
        "--good: #35b558; --bad: #e66767; "
        + _palette_vars(_PALETTE_DARK, _FOLD_COLOR_DARK)
        + " } }\n"
    )
    return light + dark + _CSS + "\n" + _series_css()


def render_html(data: ReportData, title: str = "repro performance report") -> str:
    """The full self-contained dashboard page (strict XHTML)."""
    sha = data.meta.get("git_sha")
    subtitle = f"source: {data.source or '(in-memory)'}"
    if isinstance(sha, str):
        subtitle += f" — commit {sha[:12]}"
    panels = "".join(
        [
            _regression_panel(data),
            _speedup_panel(data),
            _tier_speedup_panel(data),
            _scaling_panel(data),
            _strategy_panel(data),
            _amortization_panel(data),
            _imbalance_panel(data),
            _health_panel(data),
            _trend_panel(data),
            _meta_panel(data),
        ]
    )
    return (
        '<?xml version="1.0" encoding="utf-8"?>\n'
        '<html xmlns="http://www.w3.org/1999/xhtml"><head>'
        f"<title>{_esc(title)}</title>"
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1" />'
        f"<style>{_palette_css()}</style>"
        "</head><body>"
        f"<h1>{_esc(title)}</h1>"
        f'<p class="muted">{_esc(subtitle)}</p>'
        f"{panels}"
        "</body></html>\n"
    )


def render_text_summary(data: ReportData, top: int = 8) -> str:
    """Terminal/markdown digest of the same panels."""
    lines: List[str] = []
    if data.regression is not None:
        lines.append("## Regression verdicts")
        lines.append(data.regression.render(gated_only=True))
        lines.append("")
    per_case = data.speedup_series()
    if per_case:
        lines.append("## Speedup vs serial (total-phase medians)")
        for case, series_map in sorted(per_case.items()):
            for label, pts in sorted(series_map.items()):
                curve = ", ".join(
                    f"w{int(x)}: {y:.2f}x" for x, y in pts
                )
                lines.append(f"- {case}/{label}: {curve}")
        lines.append("")
    tier_rows = [r for r in data.tier_speedup_records if "speedup" in r]
    if tier_rows:
        lines.append("## Kernel-tier speedup")
        for r in tier_rows:
            lines.append(
                f"- {r.get('case')}/{r.get('strategy')}/{r.get('backend')}"
                f"/w{r.get('n_workers')}: {r.get('kernel_tier')} vs "
                f"{r.get('reference_tier')} = {float(r['speedup']):.2f}x"
            )
        lines.append("")
    scaling = data.scaling_groups()
    if scaling:
        lines.append("## Scaling efficiency (repro scale)")
        for key, records in sorted(scaling.items()):
            case, strategy, backend, tier = key
            tier_tag = f"/{tier}" if tier != "numpy" else ""
            for r in records:
                kf = r.get("karp_flatt")
                kf_txt = f"{float(kf):.3f}" if kf is not None else "-"
                dominant = r.get("dominant_loss")
                loss_txt = ""
                if dominant:
                    frac = float(r.get(f"loss_{dominant}", 0.0) or 0.0)
                    loss_txt = (
                        f", dominant loss: {dominant} "
                        f"({frac:.0%} of core-seconds)"
                    )
                lines.append(
                    f"- {case}/{strategy}/{backend}{tier_tag}"
                    f"/w{r.get('n_workers')}: speedup "
                    f"{float(r['speedup']):.2f}x, efficiency "
                    f"{float(r.get('efficiency', 0.0)):.1%}, "
                    f"Karp-Flatt {kf_txt}{loss_txt}"
                )
        lines.append("")
    amort = data.amortization_rows()
    if amort:
        lines.append("## Setup amortization (first step vs steady state)")
        for r in amort:
            lines.append(
                f"- {r['case']}/{r['strategy']}/{r['backend']}"
                f"/w{r['n_workers']}: first "
                f"{float(r['first_step_s']) * 1e3:.3f} ms, amortized "
                f"{float(r['amortized_s']) * 1e3:.3f} ms/step "
                f"({float(r['speedup']):.1f}x)"
            )
        lines.append("")
    rows = data.imbalance_rows()
    if rows:
        lines.append("## Worst-balanced phases (max/mean)")
        for r in rows[:top]:
            lines.append(
                f"- {r['run']} {r['phase']}: {r['ratio']:.2f}x, "
                f"slack {float(r['slack_s']) * 1e3:.3f} ms"
            )
        lines.append("")
    if data.health_records:
        from repro.obs.recorder import severity_rank

        meta = data.health_meta()
        notable = data.health_events(min_severity="warning")
        worst = "info"
        for r in data.health_events():
            sev = str(r.get("severity", "info"))
            if severity_rank(sev) > severity_rank(worst):
                worst = sev
        lines.append("## Runtime health")
        lines.append(
            f"- worst severity {worst}; {meta.get('n_recorded', 0)} events "
            f"recorded ({meta.get('n_dropped', 0)} evicted)"
        )
        for r in notable[-top:]:
            lines.append(
                f"- [{r.get('severity')}] {r.get('category')}/"
                f"{r.get('event')}"
            )
        lines.append("")
    if data.trend:
        lines.append("## History trend (total medians)")
        for key, points in sorted(data.trend.items()):
            case, strategy, backend, workers, tier = key
            tier_tag = f"/{tier}" if tier != "numpy" else ""
            values = ", ".join(f"{y * 1e3:.3f}" for _, y in points[-top:])
            lines.append(
                f"- {case}/{strategy}/{backend}/w{workers}{tier_tag}: "
                f"[{values}] ms over {len(points)} run(s)"
            )
        lines.append("")
    if not lines:
        return "(nothing to report — no bench, metrics, or history data)"
    return "\n".join(lines).rstrip()


def write_report(path, data: ReportData, title: str = "repro performance report") -> str:
    """Render and atomically write the dashboard; returns the path."""
    atomic_write_text(path, render_html(data, title=title))
    return os.fspath(path)
