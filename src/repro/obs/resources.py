"""Continuous resource telemetry: /proc sampling for parent + pool workers.

The tracer answers *who ran what when*; this module answers *what the
processes consumed doing it*.  A :class:`ResourceSampler` periodically
reads ``/proc/<pid>/stat`` (CPU jiffies), ``/proc/<pid>/statm`` (resident
pages) and ``/proc/<pid>/status`` (context-switch counts) for the parent
process and — through the process backend's ``worker_pids()`` — every
live pool worker, plus the ``/dev/shm`` arena footprint through
``arena_bytes()``.  No psutil: the three proc files are parsed directly,
and on platforms without ``/proc`` the sampler degrades to a no-op.

Samples are recorded as zero-duration :class:`~repro.obs.tracer.Span`
objects with ``category=CAT_COUNTER`` on the same ``perf_counter`` clock
as every other span, so they merge into the existing trace timeline —
the exporter turns them into Chrome trace *counter* events (``ph:"C"``),
one counter track per (metric, process) drawn alongside the worker span
rows they describe.  Worker pids are re-polled on every tick, so a pool
restart (:class:`~repro.parallel.backends.processes.ProcessSDCCalculator`
replacing dead workers) is picked up automatically: old tracks stop,
new ``worker-<pid>`` tracks begin.

The sampler implements the
:class:`~repro.parallel.backends.base.PhaseObserver` hook surface
structurally (like ``ProfilingObserver`` / ``TracingObserver``) so it can
ride ``add_observer`` / :class:`~repro.parallel.backends.base.MultiObserver`
next to the tracer and profiler: the hooks are interval-guarded
opportunistic sample points, cheap enough to keep the established <2%
observability overhead contract (one clock read per phase end; an actual
/proc sample only when ``interval_s`` has elapsed).

Summaries flow into the other observability artifacts:
:meth:`ResourceSampler.record_metrics` emits per-track peak-RSS /
mean-CPU / context-switch gauges into a
:class:`~repro.obs.metrics.MetricsRegistry` (``metrics.jsonl``), and
:meth:`ResourceSampler.record_health_summary` drops one flight-recorder
event (``health.jsonl``) with the same numbers.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs.tracer import CAT_COUNTER, Span

__all__ = [
    "ProcSample",
    "ResourceSampler",
    "read_proc_sample",
    "resources_supported",
]

#: counter-track name prefixes (the part before the per-process suffix)
COUNTER_CPU = "cpu%"
COUNTER_RSS = "rss-mb"
COUNTER_CTX = "ctx-switches"
COUNTER_SHM = "shm-mb"

_BYTES_PER_MB = 1024.0 * 1024.0


def resources_supported() -> bool:
    """True when ``/proc/self`` is readable (Linux procfs semantics)."""
    return os.path.exists("/proc/self/stat")


@dataclass(frozen=True)
class ProcSample:
    """One instantaneous reading of a process's /proc counters."""

    pid: int
    #: cumulative user+system CPU time, seconds (utime+stime / CLK_TCK)
    cpu_seconds: float
    #: resident set size, bytes (statm resident pages x page size)
    rss_bytes: int
    voluntary_ctxt_switches: int
    nonvoluntary_ctxt_switches: int


def read_proc_sample(pid: int) -> Optional[ProcSample]:
    """Read one :class:`ProcSample` for ``pid``; None when gone/unsupported.

    ``/proc/<pid>/stat`` field parsing starts after the last ``)`` — the
    comm field may itself contain spaces and parentheses.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
        with open(f"/proc/{pid}/statm", "rb") as handle:
            statm = handle.read().split()
        with open(f"/proc/{pid}/status", "rb") as handle:
            status = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    try:
        after_comm = stat[stat.rindex(")") + 2 :].split()
        # stat(5): fields 14/15 are utime/stime; after_comm[0] is field 3
        utime = int(after_comm[11])
        stime = int(after_comm[12])
        clk_tck = os.sysconf("SC_CLK_TCK") or 100
        page = os.sysconf("SC_PAGE_SIZE") or 4096
        rss_bytes = int(statm[1]) * page
        vctx = ivctx = 0
        for line in status.splitlines():
            if line.startswith("voluntary_ctxt_switches:"):
                vctx = int(line.split(":")[1])
            elif line.startswith("nonvoluntary_ctxt_switches:"):
                ivctx = int(line.split(":")[1])
    except (ValueError, IndexError, OSError):
        return None
    return ProcSample(
        pid=pid,
        cpu_seconds=(utime + stime) / float(clk_tck),
        rss_bytes=rss_bytes,
        voluntary_ctxt_switches=vctx,
        nonvoluntary_ctxt_switches=ivctx,
    )


class ResourceSampler:
    """Background /proc sampler emitting counter spans + summaries.

    Parameters
    ----------
    interval_s:
        target sampling cadence (background thread and the guard on the
        opportunistic observer hooks).
    calculator:
        optional force calculator; when it exposes ``worker_pids()`` the
        sampler follows every live pool worker (re-polled per tick, so
        pool restarts swap tracks automatically), and ``arena_bytes()``
        feeds the ``/dev/shm`` footprint counter.
    pid_provider / shm_provider:
        explicit callables overriding the calculator introspection —
        useful for tests and non-calculator consumers.

    Use as a context manager (``with ResourceSampler(...) as sampler:``)
    or via :meth:`start` / :meth:`stop`.  All samples land on the
    ``time.perf_counter()`` trace clock as frozen counter spans;
    :meth:`counter_spans` snapshots them for the trace exporter.
    """

    def __init__(
        self,
        interval_s: float = 0.05,
        calculator: Optional[object] = None,
        pid_provider: Optional[Callable[[], Sequence[int]]] = None,
        shm_provider: Optional[Callable[[], int]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self._pid_provider = pid_provider
        self._shm_provider = shm_provider
        if calculator is not None:
            self.attach_calculator(calculator)
        self._parent_pid = os.getpid()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        #: pid -> (t, cumulative cpu seconds) of the previous tick
        self._prev_cpu: Dict[int, tuple] = {}
        #: track -> running aggregates for the summary
        self._stats: Dict[str, Dict[str, float]] = {}
        self._peak_shm_bytes = 0
        self._last_sample_t = 0.0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # --- wiring ---------------------------------------------------------------

    def attach_calculator(self, calculator: object) -> None:
        """Follow ``calculator``'s worker pids and shared-memory arena."""
        pids = getattr(calculator, "worker_pids", None)
        if callable(pids):
            self._pid_provider = pids
        arena = getattr(calculator, "arena_bytes", None)
        if callable(arena):
            self._shm_provider = arena

    # --- lifecycle -------------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - telemetry must not kill
                pass

    # --- PhaseObserver hook surface (structural) --------------------------------
    #
    # Backends only call these four methods; riding MultiObserver next to
    # the tracer costs one clock read per phase boundary, and an actual
    # /proc sample only once per interval — that is the sampler's share
    # of the <2% observability overhead contract.

    def on_phase_begin(self, phase: int, n_tasks: int) -> None:
        pass

    def on_task_begin(self, phase: int, task: int) -> None:
        pass

    def on_task_end(self, phase: int, task: int) -> None:
        pass

    def on_phase_end(self, phase: int) -> None:
        if time.perf_counter() - self._last_sample_t >= self.interval_s:
            self.sample_once()

    # --- sampling ---------------------------------------------------------------

    def _pids(self) -> List[int]:
        pids = [self._parent_pid]
        if self._pid_provider is not None:
            try:
                extra = list(self._pid_provider())
            except Exception:
                extra = []
            pids.extend(p for p in extra if p != self._parent_pid)
        return pids

    def _track(self, pid: int) -> str:
        # the parent's counters sit on "main"; workers reuse the
        # "worker-<pid>" track names of their reconstructed task spans
        return "main" if pid == self._parent_pid else f"worker-{pid}"

    def sample_once(self) -> int:
        """Take one sample of every followed pid; returns spans emitted."""
        now = time.perf_counter()
        self._last_sample_t = now
        emitted: List[Span] = []
        live: List[int] = []
        for pid in self._pids():
            sample = read_proc_sample(pid)
            if sample is None:
                continue
            live.append(pid)
            track = self._track(pid)
            emitted.append(
                self._counter(
                    COUNTER_RSS,
                    track,
                    pid,
                    now,
                    sample.rss_bytes / _BYTES_PER_MB,
                    unit="MB",
                )
            )
            emitted.append(
                self._counter(
                    COUNTER_CTX,
                    track,
                    pid,
                    now,
                    float(
                        sample.voluntary_ctxt_switches
                        + sample.nonvoluntary_ctxt_switches
                    ),
                    voluntary=sample.voluntary_ctxt_switches,
                    involuntary=sample.nonvoluntary_ctxt_switches,
                )
            )
            prev = self._prev_cpu.get(pid)
            self._prev_cpu[pid] = (now, sample.cpu_seconds)
            cpu_pct: Optional[float] = None
            if prev is not None and now > prev[0]:
                cpu_pct = max(
                    0.0, (sample.cpu_seconds - prev[1]) / (now - prev[0])
                ) * 100.0
                emitted.append(
                    self._counter(
                        COUNTER_CPU, track, pid, now, cpu_pct, unit="%"
                    )
                )
            self._fold_stats(track, pid, sample, cpu_pct)
        # prune cpu state of pids that vanished (pool restart / shutdown)
        for pid in list(self._prev_cpu):
            if pid not in live:
                del self._prev_cpu[pid]
        if self._shm_provider is not None:
            try:
                shm = int(self._shm_provider())
            except Exception:
                shm = 0
            if shm > 0:
                emitted.append(
                    self._counter(
                        COUNTER_SHM,
                        "arena",
                        self._parent_pid,
                        now,
                        shm / _BYTES_PER_MB,
                        unit="MB",
                    )
                )
                with self._lock:
                    self._peak_shm_bytes = max(self._peak_shm_bytes, shm)
        with self._lock:
            self._spans.extend(emitted)
        return len(emitted)

    def _counter(
        self,
        prefix: str,
        track: str,
        pid: int,
        t: float,
        value: float,
        **extra: object,
    ) -> Span:
        args: Dict[str, object] = {"value": value}
        args.update(extra)
        return Span(
            name=f"{prefix} {track}",
            category=CAT_COUNTER,
            start_s=t,
            duration_s=0.0,
            pid=pid,
            track=track,
            args=args,
        )

    def _fold_stats(
        self,
        track: str,
        pid: int,
        sample: ProcSample,
        cpu_pct: Optional[float],
    ) -> None:
        with self._lock:
            stats = self._stats.setdefault(
                track,
                {
                    "pid": float(pid),
                    "n_samples": 0.0,
                    "peak_rss_bytes": 0.0,
                    "cpu_pct_sum": 0.0,
                    "cpu_pct_n": 0.0,
                    "first_vctx": float(sample.voluntary_ctxt_switches),
                    "first_ivctx": float(sample.nonvoluntary_ctxt_switches),
                    "last_vctx": 0.0,
                    "last_ivctx": 0.0,
                },
            )
            stats["n_samples"] += 1.0
            stats["peak_rss_bytes"] = max(
                stats["peak_rss_bytes"], float(sample.rss_bytes)
            )
            stats["last_vctx"] = float(sample.voluntary_ctxt_switches)
            stats["last_ivctx"] = float(sample.nonvoluntary_ctxt_switches)
            if cpu_pct is not None:
                stats["cpu_pct_sum"] += cpu_pct
                stats["cpu_pct_n"] += 1.0

    # --- results ----------------------------------------------------------------

    def counter_spans(self) -> List[Span]:
        """Snapshot of every counter span recorded so far."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def summary(self) -> Dict[str, object]:
        """Per-track digest: peak RSS, mean CPU%, context-switch deltas."""
        with self._lock:
            stats = {k: dict(v) for k, v in self._stats.items()}
            peak_shm = self._peak_shm_bytes
        tracks: Dict[str, Dict[str, object]] = {}
        for track, s in sorted(stats.items()):
            tracks[track] = {
                "pid": int(s["pid"]),
                "n_samples": int(s["n_samples"]),
                "peak_rss_bytes": int(s["peak_rss_bytes"]),
                "mean_cpu_percent": (
                    s["cpu_pct_sum"] / s["cpu_pct_n"]
                    if s["cpu_pct_n"]
                    else None
                ),
                "ctx_switches_voluntary": int(
                    s["last_vctx"] - s["first_vctx"]
                ),
                "ctx_switches_involuntary": int(
                    s["last_ivctx"] - s["first_ivctx"]
                ),
            }
        return {
            "supported": resources_supported(),
            "n_tracks": len(tracks),
            "peak_shm_bytes": peak_shm,
            "tracks": tracks,
        }

    def worker_mean_cpu_percent(self) -> Optional[float]:
        """Mean CPU% across worker tracks (None without worker samples).

        The scaling harness's resource-pressure attribution: workers
        pinned at ~100% were compute-bound; sustained sub-100% means the
        cores were descheduled or stalled while tasks were nominally
        running.
        """
        summary = self.summary()
        values = [
            t["mean_cpu_percent"]
            for name, t in summary["tracks"].items()  # type: ignore[union-attr]
            if name != "main" and t["mean_cpu_percent"] is not None
        ]
        if not values:
            return None
        return float(sum(values) / len(values))

    def record_metrics(self, registry, **labels: object) -> None:
        """Emit the summary as gauges into a metrics registry."""
        summary = self.summary()
        for track, s in summary["tracks"].items():  # type: ignore[union-attr]
            registry.gauge(
                "resource_peak_rss_bytes",
                float(s["peak_rss_bytes"]),
                track=track,
                **labels,
            )
            if s["mean_cpu_percent"] is not None:
                registry.gauge(
                    "resource_mean_cpu_percent",
                    float(s["mean_cpu_percent"]),
                    track=track,
                    **labels,
                )
            registry.gauge(
                "resource_ctx_switches_voluntary",
                float(s["ctx_switches_voluntary"]),
                track=track,
                **labels,
            )
            registry.gauge(
                "resource_ctx_switches_involuntary",
                float(s["ctx_switches_involuntary"]),
                track=track,
                **labels,
            )
        if summary["peak_shm_bytes"]:
            registry.gauge(
                "resource_peak_shm_bytes",
                float(summary["peak_shm_bytes"]),  # type: ignore[arg-type]
                track="arena",
                **labels,
            )

    def record_health_summary(self, **fields: object) -> None:
        """Drop one flight-recorder event carrying the resource digest."""
        summary = self.summary()
        tracks: Mapping[str, Mapping[str, object]] = summary["tracks"]  # type: ignore[assignment]
        peak_rss = max(
            (int(t["peak_rss_bytes"]) for t in tracks.values()), default=0
        )
        cpu_values = [
            t["mean_cpu_percent"]
            for t in tracks.values()
            if t["mean_cpu_percent"] is not None
        ]
        try:
            from repro.obs.recorder import record

            record(
                "resources",
                "resource-summary",
                n_tracks=summary["n_tracks"],
                peak_rss_bytes=peak_rss,
                mean_cpu_percent=(
                    sum(cpu_values) / len(cpu_values) if cpu_values else None
                ),
                peak_shm_bytes=summary["peak_shm_bytes"],
                **fields,
            )
        except Exception:  # pragma: no cover - telemetry stays optional
            pass
