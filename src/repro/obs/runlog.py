"""Structured run logs: one JSON object per line, plus environment meta.

A :class:`RunLog` is the machine-readable counterpart of a run's stdout:
every record is one line of JSON with a ``kind`` discriminator and a
``t`` timestamp (``time.perf_counter()``, the repo-wide trace clock).
Canonical kinds:

* ``meta`` — the environment block (:func:`collect_run_meta`), written
  once at open;
* ``span`` — mirrored trace spans (optional; traces usually go to
  ``trace.json`` instead);
* ``metric`` — mirrored metric samples;
* ``observables`` — per-sample MD observables from the simulation loop;
* ``health`` — mirrored health-plane records: invariant threshold
  crossings from :class:`~repro.obs.health.PhysicsMonitor` and the
  end-of-run health summary (see :mod:`repro.obs.recorder`);
* ``event`` — anything else worth grepping for.

The ``meta`` record carries ``schema_version``
(:data:`RUNLOG_SCHEMA_VERSION`) so downstream readers (the CI smoke
checks, the history store) can reject streams written by an incompatible
layout instead of mis-parsing them.

:func:`collect_run_meta` is also what stamps ``BENCH_*.json``
(schema ``repro-bench-v2``) so bench trajectories are comparable across
machines.

File-backed logs stream to ``<path>.tmp`` (line-buffered append; safe to
tail mid-run) and are atomically renamed to the final path on
:meth:`RunLog.close` — an interrupted run never leaves a truncated
``run.jsonl`` where a complete one is expected.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "RUNLOG_SCHEMA_VERSION",
    "RunLog",
    "collect_run_meta",
    "git_sha",
]

#: bump when the run.jsonl record layout changes incompatibly
RUNLOG_SCHEMA_VERSION = 1


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def collect_run_meta(
    n_threads: Optional[int] = None, kernel_tier: Optional[str] = None
) -> Dict[str, object]:
    """Host/environment block identifying where a run happened.

    ``kernel_tier`` names the *resolved* tier variant the run computed
    with (e.g. ``"numba-parallel-fastmath"``) — callers that pinned a
    tier pass it explicitly; otherwise the process's active tier is
    stamped.  ``kernel_tiers`` still lists the buildable tier *bases*
    (capability), and ``numba`` records the version actually imported
    into this process (None when numba never loaded) — together these
    attribute any health event or timing to the exact code that ran.
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    from repro import kernels

    if kernel_tier is None:
        kernel_tier = kernels.active_tier().name
    numba_module = sys.modules.get("numba")

    # CPU affinity: constrained runners (CI containers, cgroup limits,
    # taskset) expose fewer schedulable CPUs than os.cpu_count() — the
    # scaling records need both to be interpretable
    try:
        affinity = sorted(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = None

    meta: Dict[str, object] = {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpus_allowed": len(affinity) if affinity is not None else None,
        "cpu_affinity": affinity,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "numba": getattr(numba_module, "__version__", None),
        "git_sha": git_sha(),
        "kernel_tier": kernel_tier,
        "kernel_tiers": list(kernels.available_tiers()),
    }
    if n_threads is not None:
        meta["n_threads"] = n_threads
    return meta


class RunLog:
    """Append-only JSONL run log (file-backed or in-memory).

    With a ``path`` the log streams to ``<path>.tmp`` (line-buffered;
    safe to tail mid-run) and atomically renames it to ``path`` on
    :meth:`close`; without one it accumulates in memory for tests and
    ad-hoc use.  Thread-safe — the MD loop and observer callbacks may
    interleave.  The first record is always the ``meta`` block, stamped
    with ``schema_version`` (:data:`RUNLOG_SCHEMA_VERSION`).
    """

    def __init__(
        self, path=None, meta: Optional[Dict[str, object]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._path = os.fspath(path) if path is not None else None
        self._tmp_path = (
            self._path + ".tmp" if self._path is not None else None
        )
        self._handle = (
            open(self._tmp_path, "w", encoding="utf-8")
            if self._tmp_path is not None
            else None
        )
        self._records: List[Dict[str, object]] = []
        meta_fields = dict(meta) if meta is not None else collect_run_meta()
        meta_fields.setdefault("schema_version", RUNLOG_SCHEMA_VERSION)
        self.log("meta", **meta_fields)

    @property
    def path(self) -> Optional[str]:
        """Final artifact path (complete only after :meth:`close`)."""
        return self._path

    @property
    def tmp_path(self) -> Optional[str]:
        """The in-progress stream path (tail this while the run lives)."""
        return self._tmp_path

    def log(self, kind: str, **fields: object) -> Dict[str, object]:
        """Append one record; returns the record as written."""
        record: Dict[str, object] = {
            "t": time.perf_counter(),
            "kind": kind,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._records.append(record)
            if self._handle is not None:
                self._handle.write(line + "\n")
                self._handle.flush()
        return record

    @property
    def records(self) -> List[Dict[str, object]]:
        """Snapshot of everything logged (also available file-backed)."""
        with self._lock:
            return list(self._records)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r["kind"] == kind]

    def close(self) -> None:
        """Flush and atomically move the stream to its final path."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
                os.replace(self._tmp_path, self._path)

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
