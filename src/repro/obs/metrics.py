"""Counters, gauges, and the derived load-balance metrics.

A :class:`MetricsRegistry` is a thread-safe store of labeled metric
samples — counters (monotonic, summed on query) and gauges (last write
wins) — serialized one JSON object per line (``metrics.jsonl``) so perf
metrics, race-check findings, and bench context land in one stream.

On top of the raw store, this module derives the quantities the paper's
discussion section reasons about:

* **per-color load-imbalance ratio** ``max_task / mean_task`` — from the
  static pair counts of each color's subdomains
  (:func:`record_schedule_metrics`) and from the *measured* task span
  durations (:func:`record_span_metrics`);
* **halo fraction** — share of pairs whose endpoints live in different
  subdomains (the writes that force the color barriers to exist);
* **barrier slack per color phase** — summed barrier-wait span time.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs.tracer import CAT_BARRIER, CAT_PHASE, CAT_TASK, Span, Tracer

__all__ = [
    "MetricRecord",
    "MetricsRegistry",
    "load_imbalance",
    "record_racecheck_metrics",
    "record_schedule_metrics",
    "record_span_metrics",
]

COUNTER = "counter"
GAUGE = "gauge"


@dataclass(frozen=True)
class MetricRecord:
    """One metric sample: name, kind, value, and identifying labels."""

    name: str
    kind: str
    value: float
    labels: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "metric": self.name,
            "kind": self.kind,
            "value": self.value,
        }
        out.update(self.labels)
        return out


def _label_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Thread-safe labeled counter/gauge store with JSONL export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[MetricRecord] = []

    # --- writing ---------------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add one counter increment (summed per label set on query)."""
        with self._lock:
            self._records.append(
                MetricRecord(name, COUNTER, float(value), dict(labels))
            )

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Record a gauge sample (last write per label set wins on query)."""
        with self._lock:
            self._records.append(
                MetricRecord(name, GAUGE, float(value), dict(labels))
            )

    # --- reading ---------------------------------------------------------------

    def records(self) -> List[MetricRecord]:
        """Snapshot of every recorded sample, in record order."""
        with self._lock:
            return list(self._records)

    def names(self) -> List[str]:
        """Distinct metric names, first-seen order."""
        seen: Dict[str, None] = {}
        for r in self.records():
            seen.setdefault(r.name, None)
        return list(seen)

    def value(self, name: str, **labels: object) -> Optional[float]:
        """Resolved value for one (name, labels): counter sum / last gauge."""
        key = _label_key(labels)
        total = 0.0
        found = False
        last: Optional[float] = None
        for r in self.records():
            if r.name != name or _label_key(r.labels) != key:
                continue
            found = True
            if r.kind == COUNTER:
                total += r.value
            else:
                last = r.value
        if not found:
            return None
        return last if last is not None else total

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # --- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """All samples, one JSON object per line."""
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True) for r in self.records()
        )

    def write_jsonl(self, path) -> None:
        """Atomically replace ``path`` with the JSONL stream."""
        from repro.obs.atomicio import atomic_write_text

        text = self.to_jsonl()
        atomic_write_text(path, text + "\n" if text else "")


def load_imbalance(values: Iterable[float]) -> float:
    """``max / mean`` of per-task load values (1.0 = perfectly balanced).

    Zero-size or all-zero inputs return 0.0 — an empty color phase has no
    imbalance to speak of.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    mean = float(arr.mean())
    if mean <= 0.0:
        return 0.0
    return float(arr.max()) / mean


def record_schedule_metrics(
    registry: MetricsRegistry,
    pairs,
    schedule,
    shard: "object | None" = None,
    **labels: object,
) -> None:
    """Static decomposition metrics from a pair partition + color schedule.

    Parameters mirror the SDC internals: ``pairs`` is a
    :class:`~repro.core.partition.PairPartition`, ``schedule`` a
    :class:`~repro.core.schedule.ColorSchedule`.  Emits pairs processed,
    atoms/pairs per subdomain (min/mean/max), per-color static
    load-imbalance ratios, and the halo fraction.

    ``shard`` is the shard dimension for multi-shard engines: the sharded
    backend emits one metric set per shard, each labeled ``shard=<id>``.
    With the default ``None`` no ``shard`` label is added, so single-shard
    callers keep the exact pre-shard record shape (regression-tested).
    """
    if shard is not None:
        labels = dict(labels)
        labels["shard"] = str(shard)
    pair_counts = pairs.pair_counts().astype(float)
    atom_counts = pairs.partition.counts().astype(float)
    registry.count("pairs_processed", float(pair_counts.sum()), **labels)
    registry.gauge("n_subdomains", float(len(pair_counts)), **labels)
    registry.gauge("n_colors", float(schedule.n_colors), **labels)
    for name, counts in (("pairs", pair_counts), ("atoms", atom_counts)):
        if counts.size:
            registry.gauge(f"{name}_per_subdomain_min", float(counts.min()), **labels)
            registry.gauge(f"{name}_per_subdomain_mean", float(counts.mean()), **labels)
            registry.gauge(f"{name}_per_subdomain_max", float(counts.max()), **labels)
    sub_of = pairs.partition.subdomain_of_atom
    if pairs.n_pairs:
        halo = float(np.mean(sub_of[pairs.i_idx] != sub_of[pairs.j_idx]))
        registry.gauge("halo_fraction", halo, **labels)
    for color, members in enumerate(schedule.phases):
        registry.gauge(
            "color_load_imbalance_static",
            load_imbalance(pair_counts[members]),
            color=color,
            n_subdomains=len(members),
            **labels,
        )


def record_racecheck_metrics(
    registry: MetricsRegistry,
    report,
    **labels: object,
) -> None:
    """Race-detector findings as metrics, same stream as the perf data.

    ``report`` is a :class:`~repro.analysis.racecheck.RaceCheckReport`.
    Every sample carries ``strategy``/``workload``/``backend`` labels so
    conflict counts sit next to the load-balance gauges of the same run.
    """
    base = {
        "strategy": report.strategy,
        "workload": report.workload,
        "backend": report.backend,
        **labels,
    }
    registry.count(
        "racecheck_conflicting_elements",
        float(report.n_conflicting_elements),
        **base,
    )
    registry.count(
        "racecheck_conflicts", float(len(report.conflicts)), **base
    )
    registry.count(
        "racecheck_canary_violations",
        float(len(report.canary_violations)),
        **base,
    )
    registry.gauge("racecheck_phases", float(report.n_phases), **base)
    registry.gauge("racecheck_ok", 1.0 if report.ok else 0.0, **base)
    if report.max_force_error is not None:
        registry.gauge(
            "racecheck_max_force_error", report.max_force_error, **base
        )


def record_span_metrics(
    registry: MetricsRegistry,
    tracer: Tracer,
    **labels: object,
) -> None:
    """Measured per-phase metrics from recorded task/barrier spans.

    For every backend phase with task spans: the *measured* load-imbalance
    ratio (longest task / mean task duration) and the barrier slack (sum
    of that phase's barrier-wait spans).  Each sample carries the phase's
    region label (``"density:color2/phase5"``) so per-color ratios can be
    ranked directly from the stream.
    """
    tasks: Dict[int, List[Span]] = {}
    for span in tracer.by_category(CAT_TASK):
        phase = span.args.get("phase")
        if isinstance(phase, int):
            tasks.setdefault(phase, []).append(span)
    slack: Dict[int, float] = {}
    for span in tracer.by_category(CAT_BARRIER):
        phase = span.args.get("phase")
        if isinstance(phase, int):
            slack[phase] = slack.get(phase, 0.0) + span.duration_s
    phase_names: Dict[int, str] = {}
    for span in tracer.by_category(CAT_PHASE):
        phase = span.args.get("phase")
        if isinstance(phase, int):
            phase_names.setdefault(phase, span.name)
    for phase in sorted(tasks):
        durations = [s.duration_s for s in tasks[phase]]
        name = phase_names.get(phase, f"phase{phase}")
        registry.gauge(
            "phase_load_imbalance_measured",
            load_imbalance(durations),
            phase=phase,
            phase_name=name,
            n_tasks=len(durations),
            **labels,
        )
        registry.gauge(
            "phase_barrier_slack_s",
            slack.get(phase, 0.0),
            phase=phase,
            phase_name=name,
            **labels,
        )
