"""Statistical regression detection over bench medians and IQRs.

``repro bench`` reports per-cell medians with interquartile ranges; this
module turns a (baseline, candidate) pair of such payloads into
per-(case, strategy, backend, workers) verdicts:

* ``regressed`` — the candidate median is slower than the baseline by
  more than the relative threshold *and* the two half-IQR bands do not
  overlap (the slowdown is outside run-to-run noise);
* ``improved`` — the mirror image (faster, outside noise);
* ``unchanged`` — inside the threshold or inside the noise bands;
* ``no-baseline`` — the candidate measured a cell the baseline lacks.

The overlap test brackets each median by half its IQR
(``[median - iqr/2, median + iqr/2]`` — the quartile band): two runs
whose quartile bands overlap cannot be distinguished by the median alone,
so the gate never fails on them regardless of the relative change.  A
cell with zero IQR on both sides degenerates to the pure threshold test.

Only ``total``-phase rows gate by default (``gate_phases``); per-phase
rows still get verdicts for the report, they just cannot fail the build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.history import HistoryEntry, RunKey, bench_cells

__all__ = [
    "DEFAULT_THRESHOLD",
    "CellVerdict",
    "RegressionReport",
    "compare_entries",
    "compare_payloads",
    "iqr_bands_overlap",
]

#: default relative median-slowdown gate (10%)
DEFAULT_THRESHOLD = 0.10

IMPROVED = "improved"
REGRESSED = "regressed"
UNCHANGED = "unchanged"
NO_BASELINE = "no-baseline"


def iqr_bands_overlap(
    median_a: float, iqr_a: float, median_b: float, iqr_b: float
) -> bool:
    """True when the half-IQR bands around the two medians intersect."""
    lo_a, hi_a = median_a - iqr_a / 2.0, median_a + iqr_a / 2.0
    lo_b, hi_b = median_b - iqr_b / 2.0, median_b + iqr_b / 2.0
    return lo_a <= hi_b and lo_b <= hi_a


@dataclass(frozen=True)
class CellVerdict:
    """The comparison outcome of one (sweep cell, phase)."""

    case: str
    strategy: str
    backend: str
    n_workers: int
    phase: str
    verdict: str
    candidate_median_s: float
    candidate_iqr_s: float
    baseline_median_s: Optional[float] = None
    baseline_iqr_s: Optional[float] = None
    #: (candidate - baseline) / baseline; None without a baseline
    rel_change: Optional[float] = None
    #: True when this verdict participates in the exit-code gate
    gated: bool = False
    #: resolved kernel tier of the measurement series
    kernel_tier: str = "numpy"

    @property
    def label(self) -> str:
        base = (
            f"{self.case}/{self.strategy}/{self.backend}"
            f"/w{self.n_workers}"
        )
        # the numpy tier is the historical default; only non-default
        # tiers are called out so pre-tier baselines keep their labels
        if self.kernel_tier != "numpy":
            return f"{base}/{self.kernel_tier}"
        return base

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "strategy": self.strategy,
            "backend": self.backend,
            "n_workers": self.n_workers,
            "kernel_tier": self.kernel_tier,
            "phase": self.phase,
            "verdict": self.verdict,
            "candidate_median_s": self.candidate_median_s,
            "candidate_iqr_s": self.candidate_iqr_s,
            "baseline_median_s": self.baseline_median_s,
            "baseline_iqr_s": self.baseline_iqr_s,
            "rel_change": self.rel_change,
            "gated": self.gated,
        }


@dataclass
class RegressionReport:
    """All cell verdicts of one candidate-vs-baseline comparison."""

    verdicts: List[CellVerdict] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    baseline_sha: Optional[str] = None
    candidate_sha: Optional[str] = None

    def of_verdict(self, verdict: str) -> List[CellVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def hard_regressions(self) -> List[CellVerdict]:
        """Gated cells that regressed — these fail the build (exit 1)."""
        return [
            v for v in self.verdicts if v.gated and v.verdict == REGRESSED
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.hard_regressions else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.verdicts:
            out[v.verdict] = out.get(v.verdict, 0) + 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-compare-v1",
            "threshold": self.threshold,
            "baseline_sha": self.baseline_sha,
            "candidate_sha": self.candidate_sha,
            "counts": self.counts(),
            "hard_regressions": len(self.hard_regressions),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render(self, gated_only: bool = False) -> str:
        """Terminal comparison table, gated (``total``) rows first."""
        rows = [v for v in self.verdicts if v.gated or not gated_only]
        if not rows:
            return "(no comparable cells)"
        rows.sort(key=lambda v: (not v.gated, v.label, v.phase))
        header = (
            f"{'cell':<34} {'phase':<16} {'baseline':>12} "
            f"{'candidate':>12} {'change':>8}  verdict"
        )
        lines = [header, "-" * len(header)]
        for v in rows:
            base = (
                f"{v.baseline_median_s:.6f} s"
                if v.baseline_median_s is not None
                else "-"
            )
            change = (
                f"{v.rel_change * 100:+.1f}%"
                if v.rel_change is not None
                else "-"
            )
            mark = " <-- FAIL" if v.gated and v.verdict == REGRESSED else ""
            lines.append(
                f"{v.label:<34} {v.phase:<16} {base:>12} "
                f"{v.candidate_median_s:>10.6f} s {change:>8}  "
                f"{v.verdict}{mark}"
            )
        counts = self.counts()
        summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        sha = lambda s: (s or "unknown")[:12]  # noqa: E731
        lines.append("")
        lines.append(
            f"baseline {sha(self.baseline_sha)} vs candidate "
            f"{sha(self.candidate_sha)} (threshold "
            f"{self.threshold * 100:.0f}%): {summary}"
        )
        if self.hard_regressions:
            lines.append(
                f"{len(self.hard_regressions)} hard regression(s) on gated "
                f"total-phase cells"
            )
        return "\n".join(lines)


def _classify(
    baseline: Mapping[str, object],
    candidate: Mapping[str, object],
    threshold: float,
) -> Tuple[str, float]:
    base_m = float(baseline["median_s"])  # type: ignore[arg-type]
    base_iqr = float(baseline.get("iqr_s", 0.0))  # type: ignore[arg-type]
    cand_m = float(candidate["median_s"])  # type: ignore[arg-type]
    cand_iqr = float(candidate.get("iqr_s", 0.0))  # type: ignore[arg-type]
    if base_m <= 0.0:
        return UNCHANGED, 0.0
    rel = (cand_m - base_m) / base_m
    if abs(rel) <= threshold + 1e-12:
        return UNCHANGED, rel
    if iqr_bands_overlap(base_m, base_iqr, cand_m, cand_iqr):
        return UNCHANGED, rel
    return (REGRESSED if rel > 0 else IMPROVED), rel


def compare_entries(
    baseline: HistoryEntry,
    candidate: HistoryEntry,
    threshold: float = DEFAULT_THRESHOLD,
    gate_phases: Sequence[str] = ("total",),
) -> RegressionReport:
    """Compare two bench history entries cell by cell."""
    base_cells = {
        (key.series(), phase): record
        for (key, phase), record in bench_cells(baseline).items()
    }
    report = RegressionReport(
        threshold=threshold,
        baseline_sha=baseline.git_sha,
        candidate_sha=candidate.git_sha,
    )
    for (key, phase), record in sorted(
        bench_cells(candidate).items(),
        key=lambda kv: (kv[0][0].series(), kv[0][1]),
    ):
        gated = phase in gate_phases
        base = base_cells.get((key.series(), phase))
        cand_m = float(record["median_s"])  # type: ignore[arg-type]
        cand_iqr = float(record.get("iqr_s", 0.0))  # type: ignore[arg-type]
        if base is None:
            report.verdicts.append(
                CellVerdict(
                    case=key.case,
                    strategy=key.strategy,
                    backend=key.backend,
                    n_workers=key.n_workers,
                    phase=phase,
                    verdict=NO_BASELINE,
                    candidate_median_s=cand_m,
                    candidate_iqr_s=cand_iqr,
                    gated=gated,
                    kernel_tier=key.kernel_tier,
                )
            )
            continue
        verdict, rel = _classify(base, record, threshold)
        report.verdicts.append(
            CellVerdict(
                case=key.case,
                strategy=key.strategy,
                backend=key.backend,
                n_workers=key.n_workers,
                phase=phase,
                verdict=verdict,
                candidate_median_s=cand_m,
                candidate_iqr_s=cand_iqr,
                kernel_tier=key.kernel_tier,
                baseline_median_s=float(base["median_s"]),  # type: ignore[arg-type]
                baseline_iqr_s=float(base.get("iqr_s", 0.0)),  # type: ignore[arg-type]
                rel_change=rel,
                gated=gated,
            )
        )
    return report


def compare_payloads(
    baseline: Mapping[str, object],
    candidate: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    gate_phases: Sequence[str] = ("total",),
) -> RegressionReport:
    """Compare two raw ``repro-bench-v2`` payloads (file contents)."""

    def entry(payload: Mapping[str, object], seq: int) -> HistoryEntry:
        return HistoryEntry(
            seq=seq,
            kind="bench",
            source="",
            meta=dict(payload.get("meta", {})),  # type: ignore[arg-type]
            records=list(payload.get("records", [])),  # type: ignore[arg-type]
        )

    return compare_entries(
        entry(baseline, 0),
        entry(candidate, 1),
        threshold=threshold,
        gate_phases=gate_phases,
    )
