"""Runtime observability: span tracing, metrics, structured run logs.

Built on the :class:`~repro.parallel.backends.base.PhaseObserver` hook
surface the analysis and profiling layers already use.  Four pieces:

* :mod:`repro.obs.tracer` — :class:`Tracer` / :class:`Span` /
  :class:`TracingObserver`: real-timestamped spans across serial, thread,
  and forked-process execution;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` counters/gauges and
  the derived load-imbalance / halo / barrier-slack metrics;
* :mod:`repro.obs.exporters` — Chrome trace-event (Perfetto) export and
  the worst-balanced-phase text summary;
* :mod:`repro.obs.runlog` — JSONL structured run logs + the environment
  meta block;
* :mod:`repro.obs.resources` — the /proc resource sampler: CPU/RSS/
  context-switch/shm counter tracks for the parent and every pool
  worker, merged into the trace timeline (``repro scale``,
  ``--sample-resources``);
* :mod:`repro.obs.recorder` / :mod:`repro.obs.health` — the runtime
  health plane: the always-on flight recorder every subsystem feeds,
  the physics invariant monitors, and the
  :meth:`~repro.obs.health.HealthMonitor.snapshot` API behind
  ``repro doctor`` / ``repro health``.

On top of the per-run artifacts, the performance-history layer compares
runs over time:

* :mod:`repro.obs.history` — :class:`RunStore`, the append-only
  ``history.jsonl`` trajectory of ingested artifacts;
* :mod:`repro.obs.regress` — median/IQR regression verdicts
  (``repro compare``);
* :mod:`repro.obs.report` — the self-contained HTML dashboard + terminal
  summary (``repro report``);
* :mod:`repro.obs.atomicio` — tmp-file + ``os.replace`` write helpers
  every exporter funnels through.

``repro trace`` (:mod:`repro.harness.tracing`) drives the per-run
artifacts; ``repro bench --store`` / ``repro trace --store`` feed the
history.
"""

from repro.obs.atomicio import (
    atomic_append_text,
    atomic_write,
    atomic_write_text,
)
from repro.obs.health import (
    HealthMonitor,
    InvariantThresholds,
    PhysicsMonitor,
)
from repro.obs.recorder import (
    HEALTH_SCHEMA_VERSION,
    FlightRecorder,
    HealthEvent,
    get_recorder,
    install_excepthook,
    read_health_jsonl,
    set_recorder,
    uninstall_excepthook,
    validate_health_records,
)
from repro.obs.exporters import (
    render_trace_summary,
    to_chrome_trace,
    write_trace_json,
)
from repro.obs.history import HistoryEntry, RunKey, RunStore
from repro.obs.metrics import (
    MetricRecord,
    MetricsRegistry,
    load_imbalance,
    record_racecheck_metrics,
    record_schedule_metrics,
    record_span_metrics,
)
from repro.obs.regress import (
    CellVerdict,
    RegressionReport,
    compare_entries,
    compare_payloads,
)
from repro.obs.report import (
    ReportData,
    load_report_source,
    render_html,
    render_text_summary,
    write_report,
)
from repro.obs.resources import (
    ProcSample,
    ResourceSampler,
    read_proc_sample,
    resources_supported,
)
from repro.obs.runlog import (
    RUNLOG_SCHEMA_VERSION,
    RunLog,
    collect_run_meta,
    git_sha,
)
from repro.obs.tracer import (
    CAT_COUNTER,
    Span,
    Tracer,
    TracingObserver,
    align_worker_spans,
)

__all__ = [
    "atomic_append_text",
    "atomic_write",
    "atomic_write_text",
    "HEALTH_SCHEMA_VERSION",
    "FlightRecorder",
    "HealthEvent",
    "HealthMonitor",
    "InvariantThresholds",
    "PhysicsMonitor",
    "get_recorder",
    "install_excepthook",
    "read_health_jsonl",
    "set_recorder",
    "uninstall_excepthook",
    "validate_health_records",
    "HistoryEntry",
    "RunKey",
    "RunStore",
    "CellVerdict",
    "RegressionReport",
    "compare_entries",
    "compare_payloads",
    "ReportData",
    "load_report_source",
    "render_html",
    "render_text_summary",
    "write_report",
    "RUNLOG_SCHEMA_VERSION",
    "CAT_COUNTER",
    "ProcSample",
    "ResourceSampler",
    "read_proc_sample",
    "resources_supported",
    "Span",
    "Tracer",
    "TracingObserver",
    "align_worker_spans",
    "MetricRecord",
    "MetricsRegistry",
    "load_imbalance",
    "record_racecheck_metrics",
    "record_schedule_metrics",
    "record_span_metrics",
    "RunLog",
    "collect_run_meta",
    "git_sha",
    "to_chrome_trace",
    "write_trace_json",
    "render_trace_summary",
]
