"""Runtime observability: span tracing, metrics, structured run logs.

Built on the :class:`~repro.parallel.backends.base.PhaseObserver` hook
surface the analysis and profiling layers already use.  Four pieces:

* :mod:`repro.obs.tracer` — :class:`Tracer` / :class:`Span` /
  :class:`TracingObserver`: real-timestamped spans across serial, thread,
  and forked-process execution;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` counters/gauges and
  the derived load-imbalance / halo / barrier-slack metrics;
* :mod:`repro.obs.exporters` — Chrome trace-event (Perfetto) export and
  the worst-balanced-phase text summary;
* :mod:`repro.obs.runlog` — JSONL structured run logs + the environment
  meta block.

``repro trace`` (:mod:`repro.harness.tracing`) drives all four.
"""

from repro.obs.exporters import (
    render_trace_summary,
    to_chrome_trace,
    write_trace_json,
)
from repro.obs.metrics import (
    MetricRecord,
    MetricsRegistry,
    load_imbalance,
    record_racecheck_metrics,
    record_schedule_metrics,
    record_span_metrics,
)
from repro.obs.runlog import RunLog, collect_run_meta, git_sha
from repro.obs.tracer import (
    Span,
    Tracer,
    TracingObserver,
    align_worker_spans,
)

__all__ = [
    "Span",
    "Tracer",
    "TracingObserver",
    "align_worker_spans",
    "MetricRecord",
    "MetricsRegistry",
    "load_imbalance",
    "record_racecheck_metrics",
    "record_schedule_metrics",
    "record_span_metrics",
    "RunLog",
    "collect_run_meta",
    "git_sha",
    "to_chrome_trace",
    "write_trace_json",
    "render_trace_summary",
]
