"""The flight recorder: a bounded in-memory ring of structured health events.

Every runtime subsystem (the persistent process engine, the kernel-tier
registry, the SDC scheduler, the physics invariant monitors, the observer
fan-out) feeds one process-global :class:`FlightRecorder`.  The recorder
is *always on* and deliberately tiny:

* events land in a ``collections.deque`` ring (default
  :data:`DEFAULT_CAPACITY` slots) — recording is an O(1) append under a
  lock, old events fall off the back, and total/evicted counts survive
  eviction so a summary never under-reports;
* nothing is written to disk until someone asks: :meth:`FlightRecorder.dump`
  emits the ring as an atomic JSONL artifact (``health.jsonl``), and
  :func:`install_excepthook` arranges the same dump on an uncaught
  exception so a crashed run still leaves its last events behind;
* severities are ordered (:data:`SEVERITIES`); categories are an open
  set, with the canonical producers listed in :data:`CATEGORIES`.

The *overhead contract* (DESIGN.md §7.3): with the recorder enabled, a
steady-state MD step records no events at all — subsystems emit only on
state *changes* (pool restarts, arena resizes, JIT compiles, fallbacks,
invariant threshold crossings, neighbor rebuilds), so the hot path pays
nothing beyond the checks it already performs.  The ``slow`` suite
asserts the end-to-end cost on the medium case stays within 2% of a
recorder-disabled run.

The module-level :func:`record` / :func:`get_recorder` / :func:`count`
helpers operate on the process-global recorder; pass an explicit
:class:`FlightRecorder` for isolated use (tests, the doctor harness).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.atomicio import atomic_write_text

__all__ = [
    "CATEGORIES",
    "DEFAULT_CAPACITY",
    "HEALTH_SCHEMA_VERSION",
    "SEVERITIES",
    "FlightRecorder",
    "HealthEvent",
    "count",
    "get_recorder",
    "install_excepthook",
    "read_health_jsonl",
    "record",
    "recording_disabled",
    "set_recorder",
    "severity_rank",
    "uninstall_excepthook",
    "validate_health_records",
]

#: bump when the health.jsonl record layout changes incompatibly
HEALTH_SCHEMA_VERSION = 1

#: ring slots of the default process-global recorder (overridable via
#: the ``REPRO_HEALTH_CAPACITY`` environment variable)
DEFAULT_CAPACITY = 4096

ENV_CAPACITY = "REPRO_HEALTH_CAPACITY"

#: ordered severities, least to most urgent
SEVERITIES = ("debug", "info", "warning", "critical")

#: canonical event categories (an open set — these are the producers
#: wired in today; see DESIGN.md §7.3 for the taxonomy)
CATEGORIES = (
    "engine",  # process-backend lifecycle: pool, workers, arena
    "kernel",  # kernel-tier resolution, JIT compiles, fallbacks
    "scheduler",  # decomposition cache, neighbor rebuilds, fusion
    "physics",  # invariant monitors: drift, momentum, force sum, pressure
    "observer",  # observer fan-out failures
    "doctor",  # self-check findings
    "process",  # interpreter-level events (uncaught exceptions)
    "resources",  # /proc sampler digests: RSS, CPU%, ctx switches, shm
)

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Ordinal of a severity (unknown severities rank as ``info``)."""
    return _SEVERITY_RANK.get(severity, _SEVERITY_RANK["info"])


@dataclass(frozen=True)
class HealthEvent:
    """One structured health event.

    ``t`` is ``time.perf_counter()`` — the repo-wide trace clock, so
    health events interleave meaningfully with run-log records and trace
    spans of the same process.
    """

    t: float
    category: str
    event: str
    severity: str = "info"
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The ``kind: "health"`` JSONL record layout."""
        record: Dict[str, object] = {
            "kind": "health",
            "t": self.t,
            "category": self.category,
            "event": self.event,
            "severity": self.severity,
        }
        for key, value in self.fields.items():
            if key not in record:
                record[key] = value
        return record


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`HealthEvent` records.

    Recording never raises and never blocks beyond a short lock hold;
    once the ring is full the oldest events are evicted (their counts
    survive in :meth:`counts`).  ``enabled=False`` turns :meth:`record`
    and :meth:`count` into near-free no-ops — the comparison point for
    the overhead contract.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = True
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._totals: Dict[Tuple[str, str], int] = {}
        self._counters: Dict[str, int] = {}
        self._n_recorded = 0

    # --- recording -------------------------------------------------------------

    def record(
        self,
        category: str,
        event: str,
        severity: str = "info",
        **fields: object,
    ) -> Optional[HealthEvent]:
        """Append one event; returns it (None when recording is disabled).

        Unknown severities are rejected (a dump containing one would
        fail its own schema validation); categories are an open set.
        """
        if not self.enabled:
            return None
        if severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {severity!r} (choose from {SEVERITIES})"
            )
        item = HealthEvent(
            t=self._clock(),
            category=category,
            event=event,
            severity=severity,
            fields=fields,
        )
        key = (category, severity)
        with self._lock:
            self._ring.append(item)
            self._totals[key] = self._totals.get(key, 0) + 1
            self._n_recorded += 1
        return item

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter without creating an event.

        This is the hot-path-safe primitive (dispatch counts, observer
        failure totals): one lock hold and one dict increment, no object
        construction, nothing in the ring.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # --- reading ---------------------------------------------------------------

    def events(
        self,
        category: Optional[str] = None,
        min_severity: str = "debug",
    ) -> List[HealthEvent]:
        """Snapshot of the ring, optionally filtered."""
        floor = severity_rank(min_severity)
        with self._lock:
            items = list(self._ring)
        return [
            e
            for e in items
            if (category is None or e.category == category)
            and severity_rank(e.severity) >= floor
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def n_recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        with self._lock:
            return self._n_recorded

    @property
    def n_dropped(self) -> int:
        """Events evicted from the ring since creation/clear."""
        with self._lock:
            return self._n_recorded - len(self._ring)

    def counts(self) -> Dict[str, int]:
        """Totals per ``category/severity`` plus the named counters.

        Totals include evicted events — this is the summary surface the
        snapshot API and the report panel read.
        """
        with self._lock:
            out = {
                f"{category}/{severity}": n
                for (category, severity), n in self._totals.items()
            }
            out.update(self._counters)
        return out

    def worst_severity(self) -> Optional[str]:
        """Highest severity ever recorded (None when empty)."""
        with self._lock:
            keys = list(self._totals)
        if not keys:
            return None
        return max((s for _, s in keys), key=severity_rank)

    def snapshot(self) -> Dict[str, object]:
        """Summary dict: counts, bounds, and the last warning+ events."""
        notable = [
            e.to_dict() for e in self.events(min_severity="warning")[-8:]
        ]
        return {
            "capacity": self.capacity,
            "enabled": self.enabled,
            "n_recorded": self.n_recorded,
            "n_dropped": self.n_dropped,
            "worst_severity": self.worst_severity(),
            "counts": self.counts(),
            "notable": notable,
        }

    def clear(self) -> None:
        """Drop all events, totals, and counters."""
        with self._lock:
            self._ring.clear()
            self._totals.clear()
            self._counters.clear()
            self._n_recorded = 0

    # --- persistence -----------------------------------------------------------

    def dump(self, path) -> str:
        """Write the ring as an atomic ``health.jsonl`` artifact.

        The first line is the ``health-meta`` header (schema version,
        ring bounds, counters); every following line is one
        ``kind: "health"`` event record, oldest first.
        """
        lines = [json.dumps(self.meta_record(), sort_keys=True, default=str)]
        for event in self.events():
            lines.append(
                json.dumps(event.to_dict(), sort_keys=True, default=str)
            )
        atomic_write_text(path, "\n".join(lines) + "\n")
        return os.fspath(path)

    def meta_record(self) -> Dict[str, object]:
        """The ``health-meta`` header record of a dump."""
        return {
            "kind": "health-meta",
            "schema_version": HEALTH_SCHEMA_VERSION,
            "t": self._clock(),
            "capacity": self.capacity,
            "n_recorded": self.n_recorded,
            "n_dropped": self.n_dropped,
            "counts": self.counts(),
        }

    def records(self) -> List[Dict[str, object]]:
        """Header + event dicts, the in-memory equivalent of a dump."""
        return [self.meta_record()] + [e.to_dict() for e in self.events()]


# --- the process-global recorder ------------------------------------------------

_GLOBAL: Optional[FlightRecorder] = None
_GLOBAL_LOCK = threading.Lock()


def get_recorder() -> FlightRecorder:
    """The process-global recorder, created lazily on first use."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                try:
                    capacity = int(
                        os.environ.get(ENV_CAPACITY, "") or DEFAULT_CAPACITY
                    )
                except ValueError:
                    capacity = DEFAULT_CAPACITY
                _GLOBAL = FlightRecorder(capacity=max(1, capacity))
    return _GLOBAL


def set_recorder(recorder: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    """Swap the process-global recorder; returns the previous one.

    ``None`` resets to a lazily re-created default (test isolation).
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        previous, _GLOBAL = _GLOBAL, recorder
    return previous


def record(
    category: str, event: str, severity: str = "info", **fields: object
) -> Optional[HealthEvent]:
    """Record on the process-global recorder (never raises)."""
    try:
        return get_recorder().record(category, event, severity, **fields)
    except Exception:  # pragma: no cover - recording must never crash a run
        return None


def count(name: str, n: int = 1) -> None:
    """Bump a named counter on the process-global recorder."""
    try:
        get_recorder().count(name, n)
    except Exception:  # pragma: no cover - recording must never crash a run
        pass


class recording_disabled:
    """Context manager: temporarily disable the global recorder.

    The comparison arm of the overhead measurement, and a way for tests
    to silence instrumented code paths.
    """

    def __enter__(self) -> "recording_disabled":
        self._recorder = get_recorder()
        self._previous = self._recorder.enabled
        self._recorder.enabled = False
        return self

    def __exit__(self, *exc: object) -> None:
        self._recorder.enabled = self._previous


# --- crash dump hook ------------------------------------------------------------

_HOOK_STATE: Dict[str, object] = {}


def install_excepthook(
    path, recorder: Optional[FlightRecorder] = None
) -> None:
    """Dump ``path`` (health.jsonl) when an uncaught exception escapes.

    Chains to the previously installed ``sys.excepthook`` so tracebacks
    still print.  Idempotent: re-installing replaces the dump target.
    """
    uninstall_excepthook()
    previous = sys.excepthook

    def hook(exc_type, exc, tb):
        target = recorder if recorder is not None else get_recorder()
        try:
            target.record(
                "process",
                "uncaught-exception",
                severity="critical",
                exc_type=getattr(exc_type, "__name__", str(exc_type)),
                message=str(exc),
            )
            target.dump(path)
        except Exception:  # pragma: no cover - the dump must not mask the crash
            pass
        previous(exc_type, exc, tb)

    _HOOK_STATE["previous"] = previous
    _HOOK_STATE["hook"] = hook
    sys.excepthook = hook


def uninstall_excepthook() -> None:
    """Restore the pre-install ``sys.excepthook`` (idempotent)."""
    hook = _HOOK_STATE.pop("hook", None)
    previous = _HOOK_STATE.pop("previous", None)
    if hook is not None and sys.excepthook is hook and previous is not None:
        sys.excepthook = previous


# --- reading dumps back ---------------------------------------------------------


def read_health_jsonl(
    path,
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Parse a ``health.jsonl`` dump into ``(meta, events)``.

    Validates the stream (:func:`validate_health_records`) so a reader
    fails loudly on an incompatible or truncated artifact.
    """
    records: List[Dict[str, object]] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return validate_health_records(records)


def validate_health_records(
    records: Iterable[Mapping[str, object]],
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Check a health record stream; returns ``(meta, events)``.

    Raises ``ValueError`` on a missing/incompatible header or a
    malformed event record — the contract the CI health-smoke job
    asserts.
    """
    records = [dict(r) for r in records]
    if not records or records[0].get("kind") != "health-meta":
        raise ValueError("health stream must start with a health-meta record")
    meta = records[0]
    version = meta.get("schema_version")
    if version != HEALTH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported health schema_version {version!r} "
            f"(expected {HEALTH_SCHEMA_VERSION})"
        )
    events: List[Dict[str, object]] = []
    for record_ in records[1:]:
        if record_.get("kind") != "health":
            raise ValueError(f"unexpected record kind {record_.get('kind')!r}")
        for key in ("t", "category", "event", "severity"):
            if key not in record_:
                raise ValueError(f"health event missing {key!r}: {record_}")
        if record_["severity"] not in SEVERITIES:
            raise ValueError(
                f"unknown severity {record_['severity']!r}: {record_}"
            )
        events.append(record_)
    return meta, events
