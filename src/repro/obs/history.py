"""Performance history: an append-only store of run artifacts over time.

The per-run artifacts (``BENCH_*.json`` from ``repro bench``,
``metrics.jsonl`` / ``run.jsonl`` from ``repro trace``) each describe one
invocation; the :class:`RunStore` strings them into a trajectory.  Every
ingested artifact becomes one JSONL line (a :class:`HistoryEntry`) in the
store file (default ``.repro/history.jsonl``), carrying:

* a monotonically increasing ``seq`` number (append order);
* the ``kind`` discriminator (``bench`` / ``reordering`` / ``metrics`` /
  ``runlog`` / ``health``);
* the run's ``meta`` environment block (hostname, git SHA, thread count,
  Python/NumPy versions) preserved verbatim;
* the artifact's records.

Bench records are addressable by :class:`RunKey` — (git SHA, case,
strategy, backend, n_workers) — which is what the regression gate
(:mod:`repro.obs.regress`) and the trend panels of the HTML report
(:mod:`repro.obs.report`) join on.

Appends are atomic (:func:`repro.obs.atomicio.atomic_append_text`): an
interrupted ingest leaves the store at its previous complete state.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs.atomicio import atomic_append_text

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_STORE_PATH",
    "HistoryEntry",
    "RunKey",
    "RunStore",
    "bench_cells",
]

HISTORY_SCHEMA = "repro-history-v1"

#: default store location, relative to the working directory
DEFAULT_STORE_PATH = os.path.join(".repro", "history.jsonl")


@dataclass(frozen=True)
class RunKey:
    """The identity of one bench measurement series.

    Two records with equal keys are the *same* measurement repeated over
    time (possibly at different commits — drop ``git_sha`` via
    :meth:`series` to follow one cell across history).
    """

    git_sha: Optional[str]
    case: str
    strategy: str
    backend: str
    n_workers: int
    #: resolved kernel tier; pre-tier records default to "numpy" (the
    #: only tier that existed when they were written)
    kernel_tier: str = "numpy"

    def series(self) -> Tuple[str, str, str, int, str]:
        """The commit-independent part (case, strategy, backend, workers,
        kernel tier)."""
        return (
            self.case,
            self.strategy,
            self.backend,
            self.n_workers,
            self.kernel_tier,
        )


@dataclass
class HistoryEntry:
    """One ingested artifact: meta block + its records."""

    seq: int
    kind: str
    source: str
    meta: Dict[str, object] = field(default_factory=dict)
    records: List[Dict[str, object]] = field(default_factory=list)

    @property
    def git_sha(self) -> Optional[str]:
        sha = self.meta.get("git_sha")
        return sha if isinstance(sha, str) else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": HISTORY_SCHEMA,
            "seq": self.seq,
            "kind": self.kind,
            "source": self.source,
            "meta": self.meta,
            "records": self.records,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "HistoryEntry":
        schema = payload.get("schema")
        if schema != HISTORY_SCHEMA:
            raise ValueError(
                f"unsupported history schema {schema!r} "
                f"(expected {HISTORY_SCHEMA!r})"
            )
        return cls(
            seq=int(payload["seq"]),  # type: ignore[arg-type]
            kind=str(payload["kind"]),
            source=str(payload.get("source", "")),
            meta=dict(payload.get("meta", {})),  # type: ignore[arg-type]
            records=list(payload.get("records", [])),  # type: ignore[arg-type]
        )


def bench_cells(
    entry: HistoryEntry,
) -> Dict[Tuple[RunKey, str], Dict[str, object]]:
    """Index a bench entry's records by (RunKey, phase).

    Records without the sweep-cell fields (e.g. the reordering summary
    line) are skipped.
    """
    sha = entry.git_sha
    cells: Dict[Tuple[RunKey, str], Dict[str, object]] = {}
    for record in entry.records:
        try:
            key = RunKey(
                git_sha=sha,
                case=str(record["case"]),
                strategy=str(record["strategy"]),
                backend=str(record["backend"]),
                n_workers=int(record["n_workers"]),  # type: ignore[arg-type]
                kernel_tier=str(record.get("kernel_tier", "numpy")),
            )
            phase = str(record["phase"])
        except (KeyError, TypeError, ValueError):
            continue
        cells[(key, phase)] = record
    return cells


class RunStore:
    """Append-only JSONL history of ingested run artifacts.

    The store file is created lazily on first append; reads of a missing
    store return no entries (an empty trajectory, not an error).
    """

    def __init__(self, path=DEFAULT_STORE_PATH) -> None:
        self._path = os.fspath(path)

    @property
    def path(self) -> str:
        return self._path

    # --- reading ---------------------------------------------------------------

    def entries(self, kind: Optional[str] = None) -> List[HistoryEntry]:
        """All stored entries in append order, optionally one kind only."""
        out: List[HistoryEntry] = []
        if not os.path.exists(self._path):
            return out
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                out.append(HistoryEntry.from_dict(json.loads(line)))
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def __len__(self) -> int:
        return len(self.entries())

    def latest(self, kind: str) -> Optional[HistoryEntry]:
        """The most recently appended entry of ``kind`` (None if none)."""
        found = self.entries(kind)
        return found[-1] if found else None

    def baseline_bench(
        self, exclude_seq: Optional[int] = None
    ) -> Optional[HistoryEntry]:
        """The latest bench entry usable as a comparison baseline.

        ``exclude_seq`` skips the candidate's own entry when it was
        already ingested into the same store.
        """
        for entry in reversed(self.entries("bench")):
            if exclude_seq is not None and entry.seq == exclude_seq:
                continue
            return entry
        return None

    def series(
        self, kind: str = "bench"
    ) -> Dict[
        Tuple[str, str, str, int, str], List[Tuple[int, Dict[str, object]]]
    ]:
        """Per-cell ``total``-phase trajectory across the whole store.

        Maps (case, strategy, backend, n_workers, kernel_tier) to the
        time-ordered ``(seq, record)`` list — the data behind the trend
        sparklines.
        """
        out: Dict[
            Tuple[str, str, str, int, str],
            List[Tuple[int, Dict[str, object]]],
        ] = {}
        for entry in self.entries(kind):
            for (key, phase), record in bench_cells(entry).items():
                if phase != "total":
                    continue
                out.setdefault(key.series(), []).append((entry.seq, record))
        return out

    # --- appending -------------------------------------------------------------

    def _next_seq(self) -> int:
        existing = self.entries()
        return existing[-1].seq + 1 if existing else 0

    def _append(self, entry: HistoryEntry) -> HistoryEntry:
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        atomic_append_text(
            self._path,
            json.dumps(entry.to_dict(), sort_keys=True, default=str) + "\n",
        )
        return entry

    def append_bench(
        self,
        payload: Mapping[str, object],
        source: str = "BENCH_forces.json",
        kind: str = "bench",
    ) -> HistoryEntry:
        """Ingest one ``repro-bench-v2`` payload (meta block preserved)."""
        schema = str(payload.get("schema", ""))
        if not schema.startswith("repro-bench"):
            raise ValueError(f"not a repro-bench payload (schema {schema!r})")
        return self._append(
            HistoryEntry(
                seq=self._next_seq(),
                kind=kind,
                source=source,
                meta=dict(payload.get("meta", {})),  # type: ignore[arg-type]
                records=list(payload.get("records", [])),  # type: ignore[arg-type]
            )
        )

    def append_records(
        self,
        kind: str,
        records: Sequence[Mapping[str, object]],
        meta: Optional[Mapping[str, object]] = None,
        source: str = "",
    ) -> HistoryEntry:
        """Ingest a generic JSONL record stream (metrics, run log)."""
        meta_block = dict(meta) if meta is not None else {}
        stored = [dict(r) for r in records]
        if kind == "runlog" and not meta_block:
            for record in stored:
                if record.get("kind") == "meta":
                    meta_block = {
                        k: v
                        for k, v in record.items()
                        if k not in ("kind", "t")
                    }
                    break
        return self._append(
            HistoryEntry(
                seq=self._next_seq(),
                kind=kind,
                source=source,
                meta=meta_block,
                records=stored,
            )
        )

    # --- artifact-directory ingest ---------------------------------------------

    def ingest_dir(self, directory) -> List[HistoryEntry]:
        """Ingest every known artifact found in ``directory``.

        Recognized filenames: ``BENCH_forces.json``,
        ``BENCH_reordering.json``, ``metrics.jsonl``, ``run.jsonl``,
        ``health.jsonl`` (validated against the health schema before
        ingest).  Returns the appended entries (possibly empty).
        """
        directory = os.fspath(directory)
        appended: List[HistoryEntry] = []
        for name, kind in (
            ("BENCH_forces.json", "bench"),
            ("BENCH_reordering.json", "reordering"),
        ):
            path = os.path.join(directory, name)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                appended.append(
                    self.append_bench(payload, source=name, kind=kind)
                )
        for name, kind in (
            ("metrics.jsonl", "metrics"),
            ("run.jsonl", "runlog"),
        ):
            path = os.path.join(directory, name)
            if os.path.exists(path):
                appended.append(
                    self.append_records(
                        kind, _read_jsonl(path), source=name
                    )
                )
        path = os.path.join(directory, "health.jsonl")
        if os.path.exists(path):
            from repro.obs.recorder import read_health_jsonl

            meta, events = read_health_jsonl(path)
            appended.append(
                self.append_records(
                    "health", [meta] + events, source="health.jsonl"
                )
            )
        return appended


def _read_jsonl(path) -> List[Dict[str, object]]:
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
