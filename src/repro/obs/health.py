"""Physics invariant monitors and the health snapshot API.

Two layers on top of the flight recorder (:mod:`repro.obs.recorder`):

* :class:`PhysicsMonitor` — per-step checks of the quantities an NVE MD
  run must conserve: total-energy drift against the first sampled value,
  total momentum, and the Newton's-third-law force-sum residual (forces
  over a periodic box with a symmetric pair list must sum to ~0 — a
  broken scatter or race shows up here before it shows up in energies).
  Each invariant carries warning/critical thresholds
  (:class:`InvariantThresholds`); crossings emit health events and
  mirror into the run log, but only on *status transitions*, so a
  healthy steady-state step records nothing (the overhead contract).
  Virial-pressure sanity is the one expensive check (it needs a full
  extra density+force pass), so it runs only when explicitly invoked
  (:meth:`PhysicsMonitor.check_pressure` — the doctor harness samples
  it once, long runs can call it at rebuild cadence).

* :class:`HealthMonitor` — the aggregation point the driver carries:
  owns a :class:`PhysicsMonitor`, knows the active calculator, and
  serves :meth:`HealthMonitor.snapshot` — the typed dict
  (``engine`` / ``tier`` / ``invariants`` / ``recorder`` / counters)
  that `repro doctor`, the serving layer, and tests all read.

The module depends only on numpy + :mod:`repro.units` + the recorder, so
it can be imported from anywhere in the stack without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import units
from repro.obs.recorder import FlightRecorder, get_recorder, severity_rank

__all__ = [
    "DEFAULT_THRESHOLDS",
    "HealthMonitor",
    "InvariantStatus",
    "InvariantThresholds",
    "PhysicsMonitor",
]

_STATUS_ORDER = ("ok", "warning", "critical")


@dataclass(frozen=True)
class InvariantThresholds:
    """Warning/critical thresholds for the physics invariant monitors.

    The defaults are calibrated to the repo's own NVE conservation
    tests: a velocity-Verlet run at the paper's timestep holds relative
    energy drift well below 1e-5 over hundreds of steps, momentum and
    the force sum are conserved to float64 rounding (per-atom residuals
    ~1e-13), and any bulk-iron case near equilibrium sits far inside
    |P| < 1e6 bar.  Crossing *warning* means "look at this run";
    crossing *critical* means the physics is broken (`repro doctor`
    exits 1 on it).
    """

    #: relative total-energy drift |E - E0| / max(|E0|, 1 eV)
    energy_drift_warning: float = 1.0e-5
    energy_drift_critical: float = 1.0e-3
    #: per-atom total-momentum magnitude (amu Å/ps)
    momentum_warning: float = 1.0e-8
    momentum_critical: float = 1.0e-5
    #: per-atom force-sum residual (eV/Å) — Newton's third law
    force_sum_warning: float = 1.0e-8
    force_sum_critical: float = 1.0e-5
    #: sanity bound on |virial pressure| (bar)
    pressure_bound_bar: float = 1.0e6

    def to_dict(self) -> Dict[str, float]:
        return {
            "energy_drift_warning": self.energy_drift_warning,
            "energy_drift_critical": self.energy_drift_critical,
            "momentum_warning": self.momentum_warning,
            "momentum_critical": self.momentum_critical,
            "force_sum_warning": self.force_sum_warning,
            "force_sum_critical": self.force_sum_critical,
            "pressure_bound_bar": self.pressure_bound_bar,
        }


DEFAULT_THRESHOLDS = InvariantThresholds()


@dataclass
class InvariantStatus:
    """Running state of one monitored invariant."""

    name: str
    status: str = "ok"
    value: float = 0.0
    worst: float = 0.0
    n_checks: int = 0
    n_warnings: int = 0
    n_criticals: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "value": self.value,
            "worst": self.worst,
            "n_checks": self.n_checks,
            "n_warnings": self.n_warnings,
            "n_criticals": self.n_criticals,
        }


def _classify(value: float, warning: float, critical: float) -> str:
    if value >= critical:
        return "critical"
    if value >= warning:
        return "warning"
    return "ok"


class PhysicsMonitor:
    """Per-step conserved-quantity checks with threshold events.

    The energy reference ``E0`` is the total energy at the first
    observed step; drift is measured relative to it.  Events are
    emitted only when an invariant's status *changes* (ok → warning,
    warning → critical, and the recovery edges at debug severity), so a
    healthy run records one event total: nothing.
    """

    def __init__(
        self,
        thresholds: Optional[InvariantThresholds] = None,
        recorder: Optional[FlightRecorder] = None,
        check_every: int = 1,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.thresholds = thresholds or DEFAULT_THRESHOLDS
        self._recorder = recorder
        self.check_every = check_every
        self.reference_energy: Optional[float] = None
        self.invariants: Dict[str, InvariantStatus] = {
            name: InvariantStatus(name)
            for name in ("energy_drift", "momentum", "force_sum", "pressure")
        }

    @property
    def recorder(self) -> FlightRecorder:
        return self._recorder if self._recorder is not None else get_recorder()

    # --- checks ----------------------------------------------------------------

    def observe_step(self, step: int, atoms, potential_energy: float, run_log=None) -> None:
        """Run the cheap invariant checks for one integration step."""
        if step % self.check_every != 0:
            return
        t = self.thresholds
        masses = atoms.mass_per_atom()
        velocities = atoms.velocities
        kinetic = 0.5 * units.MVV_TO_EV * float(
            np.sum(masses * np.sum(velocities * velocities, axis=1))
        )
        total = potential_energy + kinetic
        if self.reference_energy is None:
            self.reference_energy = total
        n_atoms = max(len(atoms), 1)
        drift = abs(total - self.reference_energy) / max(
            abs(self.reference_energy), 1.0
        )
        momentum = (masses[:, None] * velocities).sum(axis=0)
        momentum_per_atom = float(np.max(np.abs(momentum))) / n_atoms
        force_sum = atoms.forces.sum(axis=0)
        force_per_atom = float(np.max(np.abs(force_sum))) / n_atoms

        self._update(
            "energy_drift",
            drift,
            t.energy_drift_warning,
            t.energy_drift_critical,
            step,
            run_log,
        )
        self._update(
            "momentum",
            momentum_per_atom,
            t.momentum_warning,
            t.momentum_critical,
            step,
            run_log,
        )
        self._update(
            "force_sum",
            force_per_atom,
            t.force_sum_warning,
            t.force_sum_critical,
            step,
            run_log,
        )

    def check_pressure(self, potential, atoms, nlist, step: int = -1, run_log=None) -> float:
        """Virial-pressure sanity check (one full extra force pass).

        Deliberately not part of :meth:`observe_step` — call it at the
        doctor's sample point or at rebuild cadence.  Returns the
        pressure in bar.
        """
        from repro.md.virial import pressure_bar

        pressure = pressure_bar(potential, atoms, nlist)
        bound = self.thresholds.pressure_bound_bar
        self._update(
            "pressure", abs(pressure), bound, float("inf"), step, run_log,
            pressure_bar=pressure,
        )
        return pressure

    def _update(
        self,
        name: str,
        value: float,
        warning: float,
        critical: float,
        step: int,
        run_log,
        **extra: object,
    ) -> None:
        inv = self.invariants[name]
        inv.n_checks += 1
        inv.value = value
        inv.worst = max(inv.worst, value)
        status = _classify(value, warning, critical)
        if status == "warning":
            inv.n_warnings += 1
        elif status == "critical":
            inv.n_criticals += 1
        if status == inv.status:
            return
        rising = _STATUS_ORDER.index(status) > _STATUS_ORDER.index(inv.status)
        inv.status = status
        severity = status if rising else "debug"
        event = "invariant-breach" if rising else "invariant-recovered"
        self.recorder.record(
            "physics",
            event,
            severity=severity,
            invariant=name,
            status=status,
            value=value,
            threshold_warning=warning,
            threshold_critical=critical,
            step=step,
            **extra,
        )
        if run_log is not None and severity_rank(severity) >= severity_rank("warning"):
            try:
                run_log.log(
                    "health",
                    event=event,
                    severity=severity,
                    invariant=name,
                    status=status,
                    value=value,
                    step=step,
                )
            except Exception:  # pragma: no cover - logging must not kill the run
                pass

    # --- reading ---------------------------------------------------------------

    def status(self) -> Dict[str, Dict[str, object]]:
        return {name: inv.to_dict() for name, inv in self.invariants.items()}

    def worst_status(self) -> str:
        return max(
            (inv.status for inv in self.invariants.values()),
            key=_STATUS_ORDER.index,
        )


class HealthMonitor:
    """The run-level health aggregation point.

    Attach one to a :class:`~repro.md.simulation.Simulation` (the
    ``health=`` parameter); the driver calls :meth:`observe_step` after
    every force evaluation.  :meth:`snapshot` folds together everything
    the health plane knows: the engine's lifecycle state (any
    calculator exposing ``health_snapshot()``), the kernel-tier registry
    state, the invariant statuses, and the recorder counters.
    """

    def __init__(
        self,
        recorder: Optional[FlightRecorder] = None,
        thresholds: Optional[InvariantThresholds] = None,
        calculator=None,
        check_every: int = 1,
    ) -> None:
        self._recorder = recorder
        self.physics = PhysicsMonitor(
            thresholds=thresholds,
            recorder=recorder,
            check_every=check_every,
        )
        self.calculator = calculator

    @property
    def recorder(self) -> FlightRecorder:
        return self._recorder if self._recorder is not None else get_recorder()

    @property
    def thresholds(self) -> InvariantThresholds:
        return self.physics.thresholds

    def attach_calculator(self, calculator) -> None:
        """Bind the calculator whose engine state snapshots should cover."""
        self.calculator = calculator

    def observe_step(self, step: int, atoms, potential_energy: float, run_log=None) -> None:
        self.physics.observe_step(step, atoms, potential_energy, run_log=run_log)

    def snapshot(self) -> Dict[str, object]:
        """The typed health snapshot: engine / tier / invariants / counters."""
        from repro import kernels

        engine: Optional[Dict[str, object]] = None
        hook = getattr(self.calculator, "health_snapshot", None)
        if callable(hook):
            try:
                engine = hook()
            except Exception as exc:  # pragma: no cover - snapshot never raises
                engine = {"error": repr(exc)}
        recorder = self.recorder
        return {
            "engine": engine,
            "tier": kernels.tier_status(),
            "invariants": self.physics.status(),
            "worst_invariant_status": self.physics.worst_status(),
            "thresholds": self.thresholds.to_dict(),
            "recorder": recorder.snapshot(),
            "counters": recorder.counts(),
        }

    def summary_fields(self) -> Dict[str, object]:
        """Compact summary for run-log meta / history records."""
        counts = self.recorder.counts()

        def total(category: str, min_severity: str = "debug") -> int:
            floor = severity_rank(min_severity)
            return sum(
                n
                for key, n in counts.items()
                if "/" in key
                and key.split("/", 1)[0] == category
                and severity_rank(key.split("/", 1)[1]) >= floor
            )

        return {
            "worst_severity": self.recorder.worst_severity(),
            "worst_invariant_status": self.physics.worst_status(),
            "n_events": self.recorder.n_recorded,
            "n_engine_events": total("engine"),
            "n_kernel_events": total("kernel"),
            "n_physics_warnings": total("physics", "warning"),
            "n_observer_failures": total("observer"),
        }

    def dump(self, path) -> str:
        """Dump the recorder ring to ``path`` (health.jsonl)."""
        return self.recorder.dump(path)
