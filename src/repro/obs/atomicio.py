"""Atomic file writes: tmp file in the target directory + ``os.replace``.

Every exporter in the observability layer (``trace.json``,
``metrics.jsonl``, ``run.jsonl``, ``BENCH_*.json``, the history store and
``report.html``) funnels through these helpers so an interrupted run can
never leave a truncated artifact at the final path: readers either see
the previous complete file or the new complete file, never a partial
write.  The tmp file lives next to the target (same filesystem) so the
final ``os.replace`` is a single atomic rename.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from contextlib import contextmanager
from typing import Iterator, TextIO

__all__ = ["atomic_write", "atomic_write_text", "atomic_append_text"]


@contextmanager
def atomic_write(path, encoding: str = "utf-8") -> Iterator[TextIO]:
    """Open a tmp file for writing; rename it over ``path`` on success.

    On any exception inside the block the tmp file is removed and the
    target is left untouched (previous content, or still absent).
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    handle = os.fdopen(fd, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, target)
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_write(path, encoding=encoding) as handle:
        handle.write(text)


def atomic_append_text(path, text: str, encoding: str = "utf-8") -> None:
    """Atomically append ``text`` to ``path`` (copy + append + replace).

    Append-only artifacts (the history store) cannot stream through a bare
    ``open(..., "a")`` without risking a torn tail on interruption, so the
    existing content is copied to a tmp file, the new text appended there,
    and the tmp renamed over the original.  O(file size) per append — the
    history store is small (one line per ingested artifact).
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    os.close(fd)
    try:
        if os.path.exists(target):
            shutil.copyfile(target, tmp)
        with open(tmp, "a", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
