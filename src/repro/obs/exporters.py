"""Trace and metrics exporters: Perfetto ``trace.json`` + text summary.

Two consumers, two formats:

* :func:`to_chrome_trace` / :func:`write_trace_json` — the Chrome
  trace-event JSON object format (``{"traceEvents": [...]}``), loadable in
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Every span
  becomes one complete event (``"ph": "X"``) with microsecond ``ts`` /
  ``dur``; tracks become integer ``tid`` rows named by metadata events.
  Zero-duration ``CAT_COUNTER`` spans (the resource sampler's CPU/RSS/
  context-switch/shm samples) become *counter* events (``"ph": "C"``)
  whose ``args.value`` draws as a numeric track on the same timeline.
* :func:`render_trace_summary` — a terminal table ranking the
  worst-balanced color phases (measured ``max/mean`` task-duration ratio,
  barrier slack) so the diagnosis works without a browser.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import CAT_COUNTER, Span

__all__ = [
    "to_chrome_trace",
    "write_trace_json",
    "render_trace_summary",
]


def to_chrome_trace(
    groups: Sequence[Tuple[str, Sequence[Span]]],
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Convert labeled span groups into one Chrome trace-event object.

    ``groups`` is a sequence of ``(label, spans)`` — one entry per traced
    run (e.g. one per case × strategy × backend combo).  Each group maps
    to one trace ``pid`` named ``label``; the distinct ``(pid, track)``
    pairs inside a group map to consecutive integer ``tid`` rows (real
    worker processes keep separate rows via their track names).
    """
    events: List[Dict[str, object]] = []
    for gid, (label, spans) in enumerate(groups):
        track_ids: Dict[Tuple[int, str], int] = {}
        for span in spans:
            key = (span.pid, span.track)
            if key not in track_ids:
                track_ids[key] = len(track_ids)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "dur": 0,
                "pid": gid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for (pid, track), tid in sorted(track_ids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "dur": 0,
                    "pid": gid,
                    "tid": tid,
                    "args": {"name": f"{track} (os pid {pid})"},
                }
            )
        for span in spans:
            if span.category == CAT_COUNTER:
                # counter events carry the sampled value in args; the
                # viewer keys counter tracks by (pid, name), so sampler
                # span names already embed their track ("cpu% worker-7")
                args = dict(span.args)
                value = args.pop("value", 0.0)
                events.append(
                    {
                        "name": span.name,
                        "cat": span.category,
                        "ph": "C",
                        "ts": span.start_s * 1e6,
                        "dur": 0,
                        "pid": gid,
                        "tid": track_ids[(span.pid, span.track)],
                        "args": {"value": value},
                    }
                )
                continue
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": gid,
                    "tid": track_ids[(span.pid, span.track)],
                    "args": dict(span.args),
                }
            )
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta is not None:
        payload["otherData"] = dict(meta)
    return payload


def write_trace_json(
    path,
    groups: Sequence[Tuple[str, Sequence[Span]]],
    meta: Optional[Mapping[str, object]] = None,
) -> None:
    """Atomically write the Chrome trace-event JSON for ``groups``."""
    from repro.obs.atomicio import atomic_write

    with atomic_write(path) as handle:
        json.dump(to_chrome_trace(groups, meta=meta), handle)
        handle.write("\n")


def render_trace_summary(registry: MetricsRegistry, top: int = 10) -> str:
    """Rank the worst-balanced color phases from recorded metrics.

    Reads the ``phase_load_imbalance_measured`` / ``phase_barrier_slack_s``
    gauges (:func:`repro.obs.metrics.record_span_metrics`) and, when
    present, the static ``color_load_imbalance_static`` gauges; sorts by
    measured ratio, worst first.
    """
    rows: List[Tuple[float, Dict[str, object]]] = []
    slack: Dict[Tuple, float] = {}
    for record in registry.records():
        if record.name == "phase_barrier_slack_s":
            key = (record.labels.get("run"), record.labels.get("phase"))
            slack[key] = record.value
    for record in registry.records():
        if record.name != "phase_load_imbalance_measured":
            continue
        key = (record.labels.get("run"), record.labels.get("phase"))
        rows.append(
            (
                record.value,
                {
                    "run": record.labels.get("run", "?"),
                    "phase": record.labels.get("phase_name", "?"),
                    "n_tasks": record.labels.get("n_tasks", "?"),
                    "slack": slack.get(key, 0.0),
                },
            )
        )
    if not rows:
        return "(no measured phase metrics)"
    rows.sort(key=lambda r: r[0], reverse=True)
    header = (
        f"{'run':<28} {'phase':<28} {'tasks':>5} "
        f"{'max/mean':>9} {'barrier slack':>14}"
    )
    lines = [
        "worst-balanced phases (measured task-duration max/mean):",
        header,
        "-" * len(header),
    ]
    for ratio, info in rows[:top]:
        lines.append(
            f"{str(info['run']):<28} {str(info['phase']):<28} "
            f"{str(info['n_tasks']):>5} {ratio:>9.2f} "
            f"{info['slack'] * 1e3:>11.3f} ms"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more phases omitted")
    return "\n".join(lines)
