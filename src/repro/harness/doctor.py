"""The ``repro doctor`` self-check: run a tiny workload, diagnose it.

The doctor exercises every layer of the stack on a small known-good
case and folds what the health plane observed into a diagnosis table:

* **environment** — host/interpreter/dependency identification
  (:func:`~repro.obs.runlog.collect_run_meta`);
* **kernel-tier** — resolve the requested tier and flag degradation
  (an explicitly requested numba variant silently running on numpy is
  a *critical* finding — that is the scenario the tier-fallback events
  exist for);
* **physics** — a short serial NVE run through the invariant monitors
  (energy drift, momentum, force-sum residual) plus one gated virial
  pressure sample;
* **process-engine** — a real force computation through the persistent
  process pool, checked for agreement with the serial reference;
* **sharded-engine** — a force computation through the sharded halo
  exchange engine (DESIGN.md §7.4), checked against the same serial
  reference, with the ghost/exchange snapshot in the finding's fields;
* **recorder** — dump the flight-recorder ring and re-validate it
  through the reader (the artifact round-trip CI asserts).

Fault injection (``inject=``) deliberately breaks one layer so CI can
assert the failure is *visible*: ``tier-degradation`` poisons the numba
registry before resolving an explicit numba tier; ``worker-kill``
SIGKILLs a live pool worker between two computations (Linux/POSIX
only).  Either must turn the doctor's exit code to 1 and leave the
triggering events in the dumped ``health.jsonl``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.health import HealthMonitor, InvariantThresholds
from repro.obs.recorder import (
    FlightRecorder,
    read_health_jsonl,
    set_recorder,
)

__all__ = [
    "FAULTS",
    "DoctorReport",
    "Finding",
    "run_doctor",
]

#: fault-injection modes ``repro doctor --inject`` accepts
FAULTS = ("none", "tier-degradation", "worker-kill")

_STATUS_ORDER = ("skip", "ok", "warning", "critical")


@dataclass
class Finding:
    """One diagnosis row: a named check and its verdict."""

    check: str
    status: str  # skip | ok | warning | critical
    detail: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "status": self.status,
            "detail": self.detail,
            "fields": dict(self.fields),
        }


@dataclass
class DoctorReport:
    """Everything one doctor invocation concluded."""

    findings: List[Finding]
    snapshot: Dict[str, object]
    inject: str = "none"
    health_path: Optional[str] = None

    @property
    def worst_status(self) -> str:
        return max(
            (f.status for f in self.findings),
            key=_STATUS_ORDER.index,
            default="ok",
        )

    @property
    def exit_code(self) -> int:
        """1 on any critical finding — the CLI contract."""
        return 1 if self.worst_status == "critical" else 0

    def render(self) -> str:
        header = f"{'check':<16} {'status':<9} detail"
        lines = [header, "-" * len(header)]
        for f in self.findings:
            lines.append(f"{f.check:<16} {f.status:<9} {f.detail}")
        lines.append("")
        lines.append(
            f"verdict: {self.worst_status}"
            + (f" (inject={self.inject})" if self.inject != "none" else "")
        )
        return "\n".join(lines)


def _check_environment(meta: Dict[str, object]) -> Finding:
    missing = [key for key in ("numpy", "python") if not meta.get(key)]
    status = "critical" if "numpy" in missing else "ok"
    detail = (
        f"python {meta.get('python')} numpy {meta.get('numpy')} "
        f"numba {meta.get('numba') or 'not-imported'} "
        f"cpus {meta.get('cpu_count')}"
    )
    if missing:
        detail = f"missing: {', '.join(missing)}; " + detail
    return Finding("environment", status, detail, fields=dict(meta))


def _check_kernel_tier(
    kernel_tier: Optional[str], inject: str
) -> Finding:
    from repro import kernels

    poisoned = inject == "tier-degradation"
    requested = kernel_tier
    if poisoned:
        kernels.poison_numba("doctor fault injection")
        # an explicit numba request is the path that must degrade loudly
        requested = requested or "numba"
    resolved = (
        kernels.get(requested) if requested else kernels.active_tier()
    )
    status_dict = kernels.tier_status()
    degraded = (
        requested is not None
        and requested not in ("numpy", "auto")
        and resolved.name == "numpy"
    )
    if degraded:
        status = "critical"
        detail = (
            f"requested tier {requested!r} degraded to numpy "
            f"({status_dict.get('numba_error') or 'numba unavailable'})"
        )
    else:
        status = "ok"
        detail = (
            f"resolved {resolved.name!r} "
            f"(numba {status_dict.get('numba_version') or 'unavailable'})"
        )
    return Finding(
        "kernel-tier",
        status,
        detail,
        fields={"requested": requested, **status_dict},
    )


def _check_physics(
    case: str,
    steps: int,
    monitor: HealthMonitor,
) -> Finding:
    from repro.harness.cases import case_by_key
    from repro.md.simulation import Simulation
    from repro.potentials import fe_potential

    atoms = case_by_key(case).build(temperature=50.0)
    sim = Simulation(atoms, fe_potential(), health=monitor)
    sim.run(steps, sample_every=max(1, steps))
    pressure = monitor.physics.check_pressure(
        sim.potential, sim.atoms, sim.nlist, step=steps
    )
    status = monitor.physics.worst_status()
    invariants = monitor.physics.status()
    drift = invariants["energy_drift"]["worst"]
    momentum = invariants["momentum"]["worst"]
    detail = (
        f"{len(atoms)} atoms x {steps} steps: drift {drift:.2e}, "
        f"momentum {momentum:.2e}/atom, pressure {pressure:.0f} bar"
    )
    return Finding("physics", status, detail, fields=invariants)


def _check_process_engine(
    case: str,
    n_workers: int,
    kernel_tier: Optional[str],
    inject: str,
) -> Finding:
    if os.name != "posix":
        return Finding(
            "process-engine",
            "skip",
            "fork-based process pool needs a POSIX host",
        )
    import signal

    import numpy as np

    from repro.core.strategies import STRATEGY_REGISTRY
    from repro.md.neighbor.verlet import build_neighbor_list
    from repro.harness.cases import case_by_key
    from repro.parallel.backends.base import BackendError
    from repro.parallel.backends.processes import ProcessSDCCalculator
    from repro.potentials import fe_potential

    atoms = case_by_key(case).build(temperature=50.0)
    potential = fe_potential()
    nlist = build_neighbor_list(
        atoms.positions, atoms.box, cutoff=potential.cutoff, half=True
    )
    reference = STRATEGY_REGISTRY["serial"]().compute(
        potential, atoms, nlist
    )
    calc = ProcessSDCCalculator(
        dims=2, n_workers=n_workers, kernel_tier=kernel_tier
    )
    killed = False
    try:
        calc.compute(potential, atoms, nlist)
        if inject == "worker-kill":
            pids = calc.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                killed = True
                time.sleep(0.1)
        result = calc.compute(potential, atoms, nlist)
        snapshot = calc.health_snapshot()
    except BackendError as exc:
        return Finding(
            "process-engine",
            "critical",
            f"process pool did not recover: {exc}",
        )
    finally:
        calc.close()
    force_err = float(
        np.max(np.abs(result.forces - reference.forces))
    )
    consistent = force_err < 1e-8
    n_restarts = int(snapshot.get("n_restarts", 0))
    if killed:
        if n_restarts >= 1 and consistent:
            status = "critical"
            detail = (
                f"injected SIGKILL: worker died, pool restarted "
                f"({n_restarts}x), recomputed forces match serial "
                f"(max|dF| {force_err:.1e})"
            )
        else:
            status = "critical"
            detail = (
                "injected SIGKILL but no restart was observed "
                f"(restarts={n_restarts}, max|dF| {force_err:.1e})"
            )
    elif not consistent:
        status = "critical"
        detail = (
            f"process forces diverge from serial (max|dF| {force_err:.1e})"
        )
    elif n_restarts > 0:
        status = "warning"
        detail = (
            f"{snapshot.get('n_workers')} workers healthy but the pool "
            f"restarted {n_restarts}x during the check"
        )
    else:
        status = "ok"
        detail = (
            f"{snapshot.get('n_workers')} workers, max|dF| vs serial "
            f"{force_err:.1e}, restarts 0"
        )
    return Finding("process-engine", status, detail, fields=snapshot)


def _check_sharded_engine(
    case: str,
    n_workers: int,
    kernel_tier: Optional[str],
) -> Finding:
    """A sharded force evaluation checked against the serial reference.

    Exercises the full exchange protocol — ghost construction, the three
    halo reductions, per-shard SDC — on the doctor workload, and reports
    the engine's health snapshot (ghost counts, exchange bytes, worker
    state) as the finding's fields.
    """
    import numpy as np

    from repro.core.strategies import STRATEGY_REGISTRY
    from repro.md.neighbor.verlet import build_neighbor_list
    from repro.harness.cases import case_by_key
    from repro.parallel.backends.base import BackendError
    from repro.parallel.backends.sharded import ShardedSDCCalculator
    from repro.potentials import fe_potential

    atoms = case_by_key(case).build(temperature=50.0)
    potential = fe_potential()
    nlist = build_neighbor_list(
        atoms.positions, atoms.box, cutoff=potential.cutoff, half=True
    )
    reference = STRATEGY_REGISTRY["serial"]().compute(
        potential, atoms, nlist
    )
    n_shards = max(2, n_workers)
    calc = ShardedSDCCalculator(n_shards=n_shards, kernel_tier=kernel_tier)
    try:
        result = calc.compute(potential, atoms.copy(), nlist)
        snapshot = calc.health_snapshot()
    except BackendError as exc:
        return Finding(
            "sharded-engine",
            "critical",
            f"sharded engine did not recover: {exc}",
        )
    finally:
        calc.close()
    force_err = float(np.max(np.abs(result.forces - reference.forces)))
    if force_err >= 1e-8:
        status = "critical"
        detail = (
            f"sharded forces diverge from serial (max|dF| {force_err:.1e})"
        )
    else:
        status = "ok"
        detail = (
            f"{n_shards} shards ({snapshot.get('shard_engine')}), "
            f"{snapshot.get('n_ghosts')} ghosts, max|dF| vs serial "
            f"{force_err:.1e}"
        )
    return Finding("sharded-engine", status, detail, fields=snapshot)


def _check_recorder(
    recorder: FlightRecorder, health_path: Optional[str]
) -> Finding:
    if health_path is None:
        n = recorder.n_recorded
        return Finding(
            "recorder", "ok", f"{n} events recorded (no dump requested)"
        )
    try:
        recorder.dump(health_path)
        meta, events = read_health_jsonl(health_path)
    except (OSError, ValueError) as exc:
        return Finding(
            "recorder",
            "critical",
            f"health.jsonl round-trip failed: {exc}",
        )
    return Finding(
        "recorder",
        "ok",
        f"{len(events)} events validated in {health_path}",
        fields={"meta": meta},
    )


def run_doctor(
    case: str = "tiny",
    steps: int = 3,
    n_workers: int = 2,
    kernel_tier: Optional[str] = None,
    inject: str = "none",
    output_dir: Optional[str] = None,
    thresholds: Optional[InvariantThresholds] = None,
) -> DoctorReport:
    """Run every doctor check; returns the diagnosis report.

    The doctor runs against a *fresh* flight recorder (swapped in for
    the duration, restored afterwards) so its health.jsonl contains
    exactly what the self-check workload produced.  When ``inject`` is
    ``"tier-degradation"`` the numba registry is poisoned first (and
    reset afterwards); ``"worker-kill"`` SIGKILLs a pool worker
    mid-check.  Any critical finding drives :attr:`DoctorReport.exit_code`
    to 1.
    """
    if inject not in FAULTS:
        raise ValueError(f"unknown inject {inject!r} (choose from {FAULTS})")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    from repro import kernels
    from repro.obs.runlog import collect_run_meta

    health_path = None
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        health_path = os.path.join(output_dir, "health.jsonl")

    recorder = FlightRecorder()
    previous = set_recorder(recorder)
    poisoned = inject == "tier-degradation"
    try:
        recorder.record(
            "doctor", "doctor-start", case=case, steps=steps, inject=inject
        )
        findings: List[Finding] = []
        tier_finding = _check_kernel_tier(kernel_tier, inject)
        meta = collect_run_meta(n_workers, kernel_tier=kernel_tier)
        findings.append(_check_environment(meta))
        findings.append(tier_finding)
        monitor = HealthMonitor(
            recorder=recorder, thresholds=thresholds
        )
        findings.append(_check_physics(case, steps, monitor))
        findings.append(
            _check_process_engine(case, n_workers, kernel_tier, inject)
        )
        findings.append(
            _check_sharded_engine(case, n_workers, kernel_tier)
        )
        for finding in findings:
            if finding.status in ("warning", "critical"):
                recorder.record(
                    "doctor",
                    "finding",
                    severity=finding.status,
                    check=finding.check,
                    detail=finding.detail,
                )
        findings.append(_check_recorder(recorder, health_path))
        snapshot = monitor.snapshot()
        report = DoctorReport(
            findings=findings,
            snapshot=snapshot,
            inject=inject,
            health_path=health_path,
        )
        recorder.record(
            "doctor",
            "doctor-end",
            severity="info",
            verdict=report.worst_status,
            exit_code=report.exit_code,
        )
        if health_path is not None:
            # re-dump so doctor-end and every finding land in the artifact
            recorder.dump(health_path)
        return report
    finally:
        if poisoned:
            kernels.reset()
        set_recorder(previous)
