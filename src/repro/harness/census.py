"""Subdomain census — the Section II.B parallel-degree claims.

The paper argues SDC scales because the number of same-color subdomains
comfortably exceeds the thread count for multi-dimensional decompositions
("there are 340 subdomains with each color in medium test case, and there
are nearly 5000 subdomains with each color in large test case"), while
1-D decomposition runs out ("the number of subdomains split by
one-dimensional SDC method is less than 24 in our small test case").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.domain import DecompositionError, decompose, parallel_degree
from repro.harness.cases import PAPER_CASES, Case
from repro.harness.report import format_table


@dataclass(frozen=True)
class CensusRow:
    """Decomposition geometry of one (case, dims) combination."""

    case_key: str
    dims: int
    counts: Optional[tuple[int, int, int]]
    n_subdomains: int
    per_color: int

    @property
    def feasible(self) -> bool:
        """Whether a constraint-respecting decomposition exists."""
        return self.counts is not None


def census(
    cases: Sequence[Case] = PAPER_CASES,
    reach: float = 3.9,
) -> List[CensusRow]:
    """Maximum-count decomposition census over cases and dimensionalities."""
    rows: List[CensusRow] = []
    for case in cases:
        for dims in (1, 2, 3):
            try:
                grid = decompose(case.box(), reach, dims)
            except DecompositionError:
                rows.append(CensusRow(case.key, dims, None, 0, 0))
                continue
            rows.append(
                CensusRow(
                    case_key=case.key,
                    dims=dims,
                    counts=grid.counts,
                    n_subdomains=grid.n_subdomains,
                    per_color=parallel_degree(grid),
                )
            )
    return rows


def render_census(rows: Sequence[CensusRow]) -> str:
    """Text table: per-color subdomain counts by case and dims."""
    by_case: Dict[str, List[CensusRow]] = {}
    for row in rows:
        by_case.setdefault(row.case_key, []).append(row)
    labels = []
    table: List[List[Optional[float]]] = []
    for case_key, case_rows in by_case.items():
        labels.append(case_key)
        table.append(
            [float(r.per_color) if r.feasible else None for r in sorted(
                case_rows, key=lambda r: r.dims
            )]
        )
    return format_table(
        "Same-color subdomains available per color (max-count decomposition)",
        labels,
        ["1-D", "2-D", "3-D"],
        table,
    )
