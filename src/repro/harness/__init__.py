"""Experiment harness: the paper's test cases, runner, and reproductions.

* :mod:`repro.harness.cases` — the four bcc-Fe test cases of Section III.B
  (plus scaled-down variants for correctness-speed runs).
* :mod:`repro.harness.runner` — builds workloads + plans and produces the
  paper's speedup numbers on the simulated machine.
* :mod:`repro.harness.table1` — Table I (1-D/2-D/3-D SDC speedups).
* :mod:`repro.harness.fig9` — Fig. 9 (SDC vs CS vs SAP vs RC curves).
* :mod:`repro.harness.reordering` — Section II.D's 12 %/39 % data-
  reordering gains.
* :mod:`repro.harness.report` — plain-text table/series formatting.
"""

from repro.harness.cases import PAPER_CASES, TEST_CASES, Case, case_by_key
from repro.harness.census import census, render_census
from repro.harness.fig9 import reproduce_all_panels, reproduce_fig9
from repro.harness.reordering import reproduce_reordering
from repro.harness.runner import ExperimentRunner, SpeedupCell
from repro.harness.table1 import reproduce_table1
from repro.harness.workloads import (
    crystal_slab,
    crystal_with_void,
    density_gradient_gas,
    nanoparticle,
    uniform_crystal,
)

__all__ = [
    "PAPER_CASES",
    "TEST_CASES",
    "Case",
    "case_by_key",
    "census",
    "render_census",
    "reproduce_all_panels",
    "reproduce_fig9",
    "reproduce_reordering",
    "ExperimentRunner",
    "SpeedupCell",
    "reproduce_table1",
    "crystal_slab",
    "crystal_with_void",
    "density_gradient_gas",
    "nanoparticle",
    "uniform_crystal",
]
