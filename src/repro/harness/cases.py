"""The paper's experimental cases (Section III.B).

All four cases are bcc iron supercells under periodic boundary conditions;
the published atom counts factor exactly as ``2 * n^3`` conventional cells:

=========  =======  ===========
case       n cells  atoms
=========  =======  ===========
small (1)     30       54 000
medium (2)    51      265 302
large (3)     81    1 062 882
large (4)    120    3 456 000
=========  =======  ===========

Cases can be *materialized* (build every atom — used at correctness scale)
or used *analytically* (atom/pair counts from geometry — how the harness
reproduces the timing tables without allocating 3.4 M atoms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import units
from repro.geometry.box import Box
from repro.geometry.lattice import (
    bcc_lattice,
    neighbors_within_cutoff_bcc,
    perturb_positions,
)
from repro.md.atoms import Atoms
from repro.utils.rng import default_rng, velocity_from_temperature


@dataclass(frozen=True)
class Case:
    """One experimental system: a cubic bcc-Fe supercell.

    Attributes
    ----------
    key:
        short identifier ("small", "medium", ...).
    n_cells:
        conventional cells per axis.
    """

    key: str
    label: str
    n_cells: int
    lattice_a: float = units.FE_BCC_LATTICE_A

    @property
    def n_atoms(self) -> int:
        """Exact atom count (2 per conventional bcc cell)."""
        return 2 * self.n_cells**3

    def box(self) -> Box:
        """The periodic box of the case (no materialization)."""
        edge = self.n_cells * self.lattice_a
        return Box((edge, edge, edge))

    def pairs_per_atom(self, reach: float) -> float:
        """Half-list pairs per atom for the perfect crystal at ``reach``."""
        return neighbors_within_cutoff_bcc(self.lattice_a, reach) / 2.0

    def build(
        self,
        perturbation: float = 0.05,
        temperature: Optional[float] = None,
        seed: int = 0,
    ) -> Atoms:
        """Materialize the case as an :class:`Atoms` object.

        ``perturbation`` jitters atoms off perfect lattice sites (non-zero
        forces); ``temperature`` draws Maxwell-Boltzmann velocities.
        Intended for the small/scaled cases — the 3.4 M-atom case is legal
        but slow to build.
        """
        rng = default_rng(seed)
        positions, box = bcc_lattice(
            self.lattice_a, (self.n_cells, self.n_cells, self.n_cells)
        )
        if perturbation > 0:
            positions = perturb_positions(positions, box, perturbation, rng)
        atoms = Atoms(box=box, positions=positions)
        if temperature is not None:
            atoms.velocities = velocity_from_temperature(
                rng,
                atoms.n_atoms,
                units.FE_MASS_AMU,
                temperature,
                units.MVV_TO_EV,
                units.KB_EV_PER_K,
            )
        return atoms


#: the paper's four measured cases, in publication order
PAPER_CASES: Tuple[Case, ...] = (
    Case(key="small", label="Small-scale case (1)", n_cells=30),
    Case(key="medium", label="Medium-scale case (2)", n_cells=51),
    Case(key="large3", label="Large-scale case (3)", n_cells=81),
    Case(key="large4", label="Large-scale case (4)", n_cells=120),
)

#: scaled-down variants for correctness-speed runs (same structure)
TEST_CASES: Tuple[Case, ...] = (
    Case(key="tiny", label="Tiny correctness case", n_cells=6),
    Case(key="mini", label="Mini correctness case", n_cells=10),
    Case(key="demo", label="Demo case", n_cells=16),
)

_ALL: Dict[str, Case] = {c.key: c for c in PAPER_CASES + TEST_CASES}


def case_by_key(key: str) -> Case:
    """Look up any known case by key; raises ``KeyError`` with choices."""
    try:
        return _ALL[key]
    except KeyError:
        raise KeyError(
            f"unknown case {key!r}; choices: {sorted(_ALL)}"
        ) from None


def paper_atom_counts() -> Dict[str, int]:
    """The published atom counts, as a sanity map used in tests."""
    return {
        "small": 54_000,
        "medium": 265_302,
        "large3": 1_062_882,
        "large4": 3_456_000,
    }
