"""The speedup runner: cases x strategies x thread counts -> Table/Figure data.

Reproduces the paper's measurement definition: *"The speedup equals
runtimes of serial programs on one core divided by runtimes of parallel
programs on multiple cores"*, where the runtime covers the electron-density
and force calculations only (which is exactly what the strategy plans
describe — neighbor-list construction is outside them, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.coloring import lattice_coloring
from repro.core.domain import DecompositionError, decompose_balanced
from repro.core.strategies import (
    ArrayPrivatizationStrategy,
    AtomicStrategy,
    CriticalSectionStrategy,
    RedundantComputationStrategy,
    SDCStrategy,
    SerialStrategy,
)
from repro.harness.cases import Case
from repro.parallel.machine import MachineConfig, paper_machine
from repro.parallel.sim_exec import SimResult, simulate
from repro.parallel.workload import WorkloadStats, analytic_workload, flat_workload

#: layout score of the Section II.D-optimized code (spatially sorted atoms,
#: sorted neighbor rows) — all Table I / Fig. 9 runs use the optimized code
OPTIMIZED_LOCALITY = 0.95
#: layout score without the reordering optimizations (random input order)
UNOPTIMIZED_LOCALITY = 0.45

#: thread counts of the paper's tables
PAPER_THREADS: Sequence[int] = (2, 3, 4, 8, 12, 16)

#: a decomposition is considered usable when at least this fraction of the
#: requested threads can be kept busy per color phase; below it the cell is
#: left blank, reproducing Table I's dashes ("the degree of parallelism is
#: less than the number of cores of machine")
MIN_PARALLEL_FRACTION = 0.6


@dataclass(frozen=True)
class SpeedupCell:
    """One table cell: a speedup, or a blank (insufficient parallelism)."""

    case_key: str
    strategy: str
    n_threads: int
    speedup: Optional[float]
    serial_seconds: float = 0.0
    parallel_seconds: float = 0.0

    @property
    def blank(self) -> bool:
        """True for the paper's dashes (1-D SDC without enough subdomains)."""
        return self.speedup is None


class ExperimentRunner:
    """Builds workloads/plans and times them on the simulated machine.

    Parameters
    ----------
    machine:
        the simulated host; defaults to the paper's 16-core Xeon E7320.
    cutoff, skin:
        potential cutoff and Verlet skin; ``reach = cutoff + skin`` drives
        both the pair counts and the decomposition constraint.
    locality:
        data-layout score for all runs (the paper always measures with the
        Section II.D optimizations on; pass
        :data:`UNOPTIMIZED_LOCALITY` for the reordering experiment).
    steps:
        timesteps per measurement (cost scales linearly; kept for
        readable absolute seconds — the paper uses 1000).
    """

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        cutoff: float = 3.6,
        skin: float = 0.3,
        locality: float = OPTIMIZED_LOCALITY,
        steps: int = 1000,
    ) -> None:
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.machine = machine or paper_machine()
        self.cutoff = cutoff
        self.skin = skin
        self.reach = cutoff + skin
        self.locality = locality
        self.steps = steps

    # --- workload construction -------------------------------------------------

    def flat_stats(self, case: Case, locality: Optional[float] = None) -> WorkloadStats:
        """Workload with no decomposition (serial/CS/SAP/RC plans)."""
        return flat_workload(
            n_atoms=case.n_atoms,
            pairs_per_atom=case.pairs_per_atom(self.reach),
            locality=self.locality if locality is None else locality,
        )

    def sdc_stats(
        self,
        case: Case,
        dims: int,
        n_threads: int,
        locality: Optional[float] = None,
    ) -> WorkloadStats:
        """Decomposition-aware workload for SDC at a given thread count.

        Raises :class:`DecompositionError` when the case's box cannot host
        a valid decomposition.
        """
        grid = decompose_balanced(case.box(), self.reach, dims, n_threads)
        coloring = lattice_coloring(grid)
        return analytic_workload(
            n_atoms=case.n_atoms,
            grid=grid,
            coloring=coloring,
            pairs_per_atom=case.pairs_per_atom(self.reach),
            locality=self.locality if locality is None else locality,
        )

    # --- timing -----------------------------------------------------------------

    def serial_time(self, case: Case, locality: Optional[float] = None) -> SimResult:
        """Simulated serial baseline runtime for a case."""
        stats = self.flat_stats(case, locality)
        plan = SerialStrategy().plan(stats, self.machine, 1)
        return simulate(plan, self.machine, 1)

    def _seconds(self, result: SimResult) -> float:
        return result.seconds * self.steps

    def sdc_speedup(
        self,
        case: Case,
        dims: int,
        n_threads: int,
        locality: Optional[float] = None,
    ) -> SpeedupCell:
        """One Table I cell: SDC speedup, or blank.

        Blank when the decomposition is impossible or produces fewer
        same-color subdomains than threads — the condition under which the
        paper "didn't use one-dimensional SDC method".
        """
        strategy_name = f"sdc-{dims}d"
        serial = self.serial_time(case, locality)
        try:
            stats = self.sdc_stats(case, dims, n_threads, locality)
        except DecompositionError:
            return SpeedupCell(case.key, strategy_name, n_threads, None)
        per_color = min(len(m) for m in stats.color_members)
        if per_color < MIN_PARALLEL_FRACTION * n_threads:
            return SpeedupCell(case.key, strategy_name, n_threads, None)
        plan = SDCStrategy(dims=dims, n_threads=n_threads).plan(
            stats, self.machine, n_threads
        )
        parallel = simulate(plan, self.machine, n_threads)
        return SpeedupCell(
            case.key,
            strategy_name,
            n_threads,
            serial.total_cycles / parallel.total_cycles,
            serial_seconds=self._seconds(serial),
            parallel_seconds=self._seconds(parallel),
        )

    def strategy_speedup(
        self,
        case: Case,
        strategy_name: str,
        n_threads: int,
        locality: Optional[float] = None,
    ) -> SpeedupCell:
        """Speedup for any strategy (Fig. 9's curves).

        ``strategy_name`` is one of ``sdc-1d``/``sdc-2d``/``sdc-3d``,
        ``critical-section``, ``array-privatization``,
        ``redundant-computation``, ``atomic``.
        """
        if strategy_name.startswith("sdc-"):
            dims = int(strategy_name[4])
            return self.sdc_speedup(case, dims, n_threads, locality)
        if strategy_name == "localwrite":
            from repro.core.strategies import LocalWriteStrategy

            serial = self.serial_time(case, locality)
            try:
                stats = self.sdc_stats(case, 3, n_threads, locality)
            except DecompositionError:
                return SpeedupCell(case.key, strategy_name, n_threads, None)
            plan = LocalWriteStrategy(dims=3, n_threads=n_threads).plan(
                stats, self.machine, n_threads
            )
            parallel = simulate(plan, self.machine, n_threads)
            return SpeedupCell(
                case.key,
                strategy_name,
                n_threads,
                serial.total_cycles / parallel.total_cycles,
                serial_seconds=self._seconds(serial),
                parallel_seconds=self._seconds(parallel),
            )
        factories = {
            "critical-section": CriticalSectionStrategy,
            "array-privatization": ArrayPrivatizationStrategy,
            "redundant-computation": RedundantComputationStrategy,
            "atomic": AtomicStrategy,
        }
        if strategy_name not in factories:
            raise ValueError(f"unknown strategy {strategy_name!r}")
        serial = self.serial_time(case, locality)
        stats = self.flat_stats(case, locality)
        strategy = factories[strategy_name](n_threads=n_threads)
        plan = strategy.plan(stats, self.machine, n_threads)
        parallel = simulate(plan, self.machine, n_threads)
        return SpeedupCell(
            case.key,
            strategy_name,
            n_threads,
            serial.total_cycles / parallel.total_cycles,
            serial_seconds=self._seconds(serial),
            parallel_seconds=self._seconds(parallel),
        )

    def speedup_series(
        self,
        case: Case,
        strategy_name: str,
        thread_counts: Sequence[int] = PAPER_THREADS,
        locality: Optional[float] = None,
    ) -> List[SpeedupCell]:
        """A full speedup-vs-threads curve for one case and strategy."""
        return [
            self.strategy_speedup(case, strategy_name, p, locality)
            for p in thread_counts
        ]
