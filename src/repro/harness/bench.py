"""Real wall-clock benchmark sweep: strategy × backend × workload.

The simulated machine (``repro.parallel.sim_exec``) reproduces the
*paper's* numbers; this module measures what the Python realization
actually costs on the current host.  Every cell of the sweep runs the
warmup/repeat protocol of :class:`repro.utils.profiler.PhaseProfiler` and
reports per-phase medians (density / embedding / force / neighbor-rebuild
/ color-barrier) plus a ``total`` row with pair throughput.

Outputs (``repro bench``):

* ``BENCH_forces.json`` — per-phase force-kernel timings, one record per
  (case, strategy, backend, n_workers, phase);
* ``BENCH_reordering.json`` — the measured Section II.D sorted-vs-shuffled
  comparison (:func:`repro.harness.reordering.measure_reordering`);
* a human-readable table on stdout.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.harness.cases import Case, case_by_key
from repro.harness.reordering import MeasuredReorderingResult, measure_reordering
from repro.utils.profiler import PhaseProfiler

#: sweep axes of the quick (CI smoke) configuration
QUICK_CASES = ("tiny",)
QUICK_STRATEGIES = ("serial", "sdc-2d")
QUICK_BACKENDS = ("serial", "threads")

#: default full sweep
DEFAULT_CASES = ("tiny", "mini")
DEFAULT_STRATEGIES = ("serial", "sdc-2d", "critical-section", "localwrite")
DEFAULT_BACKENDS = ("serial", "threads")

#: strategy keys the sweep understands (sdc split by dimensionality)
KNOWN_STRATEGIES = (
    "serial",
    "sdc-1d",
    "sdc-2d",
    "sdc-3d",
    "critical-section",
    "array-privatization",
    "redundant-computation",
    "atomic",
    "localwrite",
)
KNOWN_BACKENDS = ("serial", "threads", "processes", "sharded")


@dataclass(frozen=True)
class BenchRecord:
    """One measured phase of one sweep cell."""

    case: str
    strategy: str
    backend: str
    n_workers: int
    phase: str
    median_s: float
    iqr_s: float
    n_samples: int
    #: half-list pair throughput; only the ``total`` phase carries it
    pairs_per_s: Optional[float] = None
    #: resolved kernel tier the cell ran on ("numpy", "numba")
    kernel_tier: str = "numpy"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class BenchSkip(RuntimeError):
    """A sweep cell that cannot run (unsupported combination)."""


def _make_serial_on_backend(
    backend, potential, atoms, nlist, profiler: PhaseProfiler, tier=None
) -> Callable[[], object]:
    """Serial kernels dispatched as single-task phases through ``backend``.

    This is what "serial strategy on the threads backend" means: the same
    three-phase structure, each phase one closure, so the backend's
    dispatch/join overhead (and the observer's barrier accounting) is
    measured against the pure in-process call.  ``tier`` pins the kernel
    tier explicitly (None follows the process-global active tier).
    """
    from repro.potentials.eam import (
        eam_density_and_pair_energy_phase,
        eam_embedding_phase,
        eam_force_phase,
    )

    state: Dict[str, object] = {}

    def density() -> None:
        state["rho"], state["pair_energy"] = eam_density_and_pair_energy_phase(
            potential, atoms.positions, atoms.box, nlist, tier=tier
        )

    def embed() -> None:
        state["emb"], state["fp"] = eam_embedding_phase(
            potential, state["rho"]
        )

    def force() -> None:
        state["forces"] = eam_force_phase(
            potential, atoms.positions, atoms.box, nlist, state["fp"], tier=tier
        )

    def compute() -> object:
        with profiler.phase("density"):
            backend.run_phase([density])
        with profiler.phase("embedding"):
            backend.run_phase([embed])
        with profiler.phase("force"):
            backend.run_phase([force])
        return state["forces"]

    return compute


def _make_cell(
    strategy_key: str,
    backend_key: str,
    n_workers: int,
    potential,
    atoms,
    nlist,
    profiler: PhaseProfiler,
    kernel_tier: Optional[str] = None,
) -> Tuple[Callable[[], object], Callable[[], None]]:
    """Build (compute closure, cleanup) for one sweep cell.

    ``kernel_tier`` pins the cell on a kernel tier (None follows the
    session's active tier); the resolved name lands on
    ``profiler.kernel_tier`` so the bench records can carry it.
    """
    from repro.core.strategies import STRATEGY_REGISTRY
    from repro.parallel.backends.serial import SerialBackend
    from repro.parallel.backends.threads import ThreadBackend

    if strategy_key not in KNOWN_STRATEGIES:
        raise BenchSkip(f"unknown strategy {strategy_key!r}")
    if backend_key not in KNOWN_BACKENDS:
        raise BenchSkip(f"unknown backend {backend_key!r}")

    if backend_key == "processes":
        if not strategy_key.startswith("sdc"):
            raise BenchSkip("processes backend only runs SDC")
        from repro.parallel.backends.processes import ProcessSDCCalculator

        dims = int(strategy_key[-2]) if strategy_key != "sdc" else 2
        calc = ProcessSDCCalculator(
            dims=dims, n_workers=n_workers, kernel_tier=kernel_tier
        )
        calc.attach_profiler(profiler)
        profiler.kernel_tier = calc.kernel_tier

        def cleanup() -> None:
            calc.detach_profiler()
            calc.close()

        return lambda: calc.compute(potential, atoms, nlist), cleanup

    if backend_key == "sharded":
        if not strategy_key.startswith("sdc"):
            raise BenchSkip("sharded backend only runs SDC")
        from repro.parallel.backends.sharded import ShardedSDCCalculator

        dims = int(strategy_key[-2]) if strategy_key != "sdc" else 2
        calc = ShardedSDCCalculator(
            n_shards=n_workers, dims=dims, kernel_tier=kernel_tier
        )
        calc.attach_profiler(profiler)
        profiler.kernel_tier = calc.kernel_tier

        def cleanup() -> None:
            calc.detach_profiler()
            calc.close()

        return lambda: calc.compute(potential, atoms, nlist), cleanup

    tier = kernels.get(kernel_tier) if kernel_tier is not None else None
    profiler.kernel_tier = (
        tier if tier is not None else kernels.active_tier()
    ).name

    backend = (
        SerialBackend() if backend_key == "serial" else ThreadBackend(n_workers)
    )

    if strategy_key == "serial":
        # the tier travels inside the phase closures — no global override
        inner = _make_serial_on_backend(
            backend, potential, atoms, nlist, profiler, tier=tier
        )
        return inner, backend.close

    if strategy_key.startswith("sdc-"):
        strategy = STRATEGY_REGISTRY["sdc"](
            dims=int(strategy_key[-2]), n_threads=n_workers, backend=backend
        )
    else:
        strategy = STRATEGY_REGISTRY[strategy_key](
            n_threads=n_workers, backend=backend
        )
    # pin instead of use_tier(): concurrent sweep cells (or a user's own
    # driver on another thread) never race on the process-global slot
    strategy.set_kernel_tier(tier)
    strategy.attach_profiler(profiler)

    def cleanup() -> None:
        strategy.detach_profiler()
        backend.close()

    return lambda: strategy.compute(potential, atoms, nlist), cleanup


def bench_forces(
    cases: Sequence[str] = DEFAULT_CASES,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    n_workers: int = 2,
    warmup: int = 1,
    repeats: int = 5,
    on_skip: Optional[Callable[[str], None]] = None,
    kernel_tier: Optional[str] = None,
) -> List[BenchRecord]:
    """Run the sweep; returns one record per (cell, phase)."""
    from repro.md.neighbor.verlet import build_neighbor_list
    from repro.potentials import fe_potential

    potential = fe_potential()
    records: List[BenchRecord] = []
    for case_key in cases:
        case = case_by_key(case_key)
        atoms = case.build()
        nlist = build_neighbor_list(
            atoms.positions, atoms.box, potential.cutoff
        )
        n_pairs = nlist.n_pairs
        for strategy_key in strategies:
            for backend_key in backends:
                workers = 1 if backend_key == "serial" else n_workers
                profiler = PhaseProfiler()
                try:
                    compute, cleanup = _make_cell(
                        strategy_key,
                        backend_key,
                        workers,
                        potential,
                        atoms,
                        nlist,
                        profiler,
                        kernel_tier=kernel_tier,
                    )
                except BenchSkip as skip:
                    if on_skip is not None:
                        on_skip(
                            f"{case_key}/{strategy_key}/{backend_key}: {skip}"
                        )
                    continue
                try:
                    stats = profiler.measure(
                        compute, warmup=warmup, repeats=repeats
                    )
                finally:
                    cleanup()
                names = profiler.phase_names()
                if "total" not in names:
                    names.append("total")
                for phase in names:
                    s = stats[phase]
                    records.append(
                        BenchRecord(
                            case=case_key,
                            strategy=strategy_key,
                            backend=backend_key,
                            n_workers=workers,
                            phase=phase,
                            median_s=s.median_s,
                            iqr_s=s.iqr_s,
                            n_samples=s.n_samples,
                            pairs_per_s=(
                                n_pairs / s.median_s
                                if phase == "total" and s.median_s > 0
                                else None
                            ),
                            kernel_tier=profiler.kernel_tier or "numpy",
                        )
                    )
    return records


#: phase keys of the repeated-compute (``--steps``) mode
PHASE_FIRST_STEP = "first_step"
PHASE_AMORTIZED = "amortized"


def bench_steps(
    cases: Sequence[str] = DEFAULT_CASES,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    n_workers: int = 2,
    steps: int = 10,
    on_skip: Optional[Callable[[str], None]] = None,
    kernel_tier: Optional[str] = None,
) -> List[BenchRecord]:
    """Repeated-compute mode: first-step vs amortized per-step cost.

    Each cell builds ONE calculator and calls ``compute`` ``steps`` times
    against the same neighbor list — the persistent-engine steady state.
    The first call pays pool fork + arena allocation + decomposition
    (everything a per-call implementation pays on *every* step); calls
    2..N pay only sync + kernels + barriers.  Two records per cell:

    * ``first_step`` — wall time of call 1 (one sample);
    * ``amortized`` — median/IQR over calls 2..N, with pair throughput.
    """
    import time

    from repro.md.neighbor.verlet import build_neighbor_list
    from repro.potentials import fe_potential
    from repro.utils.timers import median_iqr

    if steps < 2:
        raise ValueError("steps mode needs at least 2 steps")
    potential = fe_potential()
    records: List[BenchRecord] = []
    for case_key in cases:
        case = case_by_key(case_key)
        atoms = case.build()
        nlist = build_neighbor_list(
            atoms.positions, atoms.box, potential.cutoff
        )
        n_pairs = nlist.n_pairs
        for strategy_key in strategies:
            for backend_key in backends:
                workers = 1 if backend_key == "serial" else n_workers
                profiler = PhaseProfiler()
                try:
                    compute, cleanup = _make_cell(
                        strategy_key,
                        backend_key,
                        workers,
                        potential,
                        atoms,
                        nlist,
                        profiler,
                        kernel_tier=kernel_tier,
                    )
                except BenchSkip as skip:
                    if on_skip is not None:
                        on_skip(
                            f"{case_key}/{strategy_key}/{backend_key}: {skip}"
                        )
                    continue
                times: List[float] = []
                try:
                    for _ in range(steps):
                        start = time.perf_counter()
                        compute()
                        times.append(time.perf_counter() - start)
                finally:
                    cleanup()
                med, iqr = median_iqr(times[1:])
                tier_name = profiler.kernel_tier or "numpy"
                records.append(
                    BenchRecord(
                        case=case_key,
                        strategy=strategy_key,
                        backend=backend_key,
                        n_workers=workers,
                        phase=PHASE_FIRST_STEP,
                        median_s=times[0],
                        iqr_s=0.0,
                        n_samples=1,
                        kernel_tier=tier_name,
                    )
                )
                records.append(
                    BenchRecord(
                        case=case_key,
                        strategy=strategy_key,
                        backend=backend_key,
                        n_workers=workers,
                        phase=PHASE_AMORTIZED,
                        median_s=med,
                        iqr_s=iqr,
                        n_samples=len(times) - 1,
                        pairs_per_s=(n_pairs / med if med > 0 else None),
                        kernel_tier=tier_name,
                    )
                )
    return records


def render_amortization_table(records: Sequence[BenchRecord]) -> str:
    """Per-cell first-step vs amortized summary with the setup speedup."""
    cells: Dict[Tuple[str, str, str, int], Dict[str, BenchRecord]] = {}
    for r in records:
        if r.phase in (PHASE_FIRST_STEP, PHASE_AMORTIZED):
            key = (r.case, r.strategy, r.backend, r.n_workers)
            cells.setdefault(key, {})[r.phase] = r
    rows = []
    for key in sorted(cells):
        pair = cells[key]
        if PHASE_FIRST_STEP not in pair or PHASE_AMORTIZED not in pair:
            continue
        first = pair[PHASE_FIRST_STEP].median_s
        amortized = pair[PHASE_AMORTIZED].median_s
        speedup = first / amortized if amortized > 0 else float("inf")
        rows.append((key, first, amortized, speedup))
    if not rows:
        return "(no repeated-compute records)"
    header = (
        f"{'case':<6} {'strategy':<22} {'backend':<9} {'w':>2} "
        f"{'first step':>12} {'amortized':>12} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for (case, strategy, backend, workers), first, amortized, speedup in rows:
        lines.append(
            f"{case:<6} {strategy:<22} {backend:<9} {workers:>2} "
            f"{first:>10.6f} s {amortized:>10.6f} s {speedup:>7.1f}x"
        )
    return "\n".join(lines)


def tier_speedup_records(
    candidate: Sequence[BenchRecord],
    reference: Sequence[BenchRecord],
) -> List[Dict[str, object]]:
    """Per-cell kernel-tier speedups: reference median / candidate median.

    Pairs candidate and reference records cell-by-cell on
    ``(case, strategy, backend, n_workers)`` using each sweep's
    end-to-end phase (``total`` for the forces sweep, ``amortized`` for
    the repeated-compute mode) and emits one history-store record per
    matched cell.  A speedup > 1 means the candidate tier is faster.
    """
    end_phases = ("total", PHASE_AMORTIZED)

    def index(records: Sequence[BenchRecord]):
        out: Dict[Tuple[str, str, str, int], BenchRecord] = {}
        for r in records:
            if r.phase in end_phases:
                out[(r.case, r.strategy, r.backend, r.n_workers)] = r
        return out

    cand, ref = index(candidate), index(reference)
    rows: List[Dict[str, object]] = []
    for key in sorted(cand):
        if key not in ref:
            continue
        c, r = cand[key], ref[key]
        if c.median_s <= 0:
            continue
        case, strategy, backend, workers = key
        rows.append(
            {
                "kind": "tier-speedup",
                "case": case,
                "strategy": strategy,
                "backend": backend,
                "n_workers": workers,
                "phase": c.phase,
                "kernel_tier": c.kernel_tier,
                "reference_tier": r.kernel_tier,
                "median_s": c.median_s,
                "reference_median_s": r.median_s,
                "speedup": r.median_s / c.median_s,
            }
        )
    return rows


def render_tier_speedup_table(rows: Sequence[Dict[str, object]]) -> str:
    """Human-readable tier-speedup table (one row per matched cell)."""
    if not rows:
        return "(no tier-speedup records)"
    header = (
        f"{'case':<6} {'strategy':<22} {'backend':<9} {'w':>2} "
        f"{'tier':<22} {'vs':<8} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['case']:<6} {row['strategy']:<22} {row['backend']:<9} "
            f"{row['n_workers']:>2} {row['kernel_tier']:<22} "
            f"{row['reference_tier']:<8} {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def reordering_records(
    result: MeasuredReorderingResult,
) -> List[Dict[str, object]]:
    """Flatten the measured reordering result into JSON records."""
    rows = [
        ("serial", "sorted", result.serial_sorted_s, result.serial_sorted_iqr_s),
        (
            "serial",
            "shuffled",
            result.serial_shuffled_s,
            result.serial_shuffled_iqr_s,
        ),
        (
            "sdc-2d",
            "sorted",
            result.parallel_sorted_s,
            result.parallel_sorted_iqr_s,
        ),
        (
            "sdc-2d",
            "shuffled",
            result.parallel_shuffled_s,
            result.parallel_shuffled_iqr_s,
        ),
    ]
    records: List[Dict[str, object]] = [
        {
            "case": result.case.key,
            "strategy": strategy,
            "layout": layout,
            "n_workers": 1 if strategy == "serial" else result.n_threads,
            "phase": "total",
            "median_s": median,
            "iqr_s": iqr,
            "n_samples": result.repeats,
        }
        for strategy, layout, median, iqr in rows
    ]
    records.append(
        {
            "case": result.case.key,
            "serial_gain_percent": result.serial_gain_percent,
            "parallel_gain_percent": result.parallel_gain_percent,
            "max_force_dev": result.max_force_dev,
        }
    )
    return records


def write_bench_json(
    path,
    records: Sequence[Dict[str, object]],
    n_threads: Optional[int] = None,
) -> None:
    """Write records with a host/environment header (schema v2).

    The ``meta`` block (hostname, CPU count, thread count, Python/NumPy
    versions, git SHA) makes bench artifacts from different machines and
    commits comparable; the legacy ``host`` block is kept for v1 readers.
    The write is atomic (tmp + ``os.replace``) so a committed baseline is
    never clobbered by a half-written file.
    """
    from repro.obs.atomicio import atomic_write

    payload = bench_payload(records, n_threads=n_threads)
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def bench_payload(
    records: Sequence[Dict[str, object]],
    n_threads: Optional[int] = None,
    kernel_tier: Optional[str] = None,
) -> Dict[str, object]:
    """The ``repro-bench-v2`` payload for ``records`` (also what the
    history store ingests without a file round-trip).

    The meta block stamps the *resolved* tier variant the records ran
    on: the explicit ``kernel_tier`` when given, else the single tier
    the records agree on, else the process's active tier.
    """
    from repro.obs.runlog import collect_run_meta

    if kernel_tier is None:
        tiers = {
            str(r.get("kernel_tier"))
            for r in records
            if isinstance(r, dict) and r.get("kernel_tier")
        }
        if len(tiers) == 1:
            kernel_tier = tiers.pop()
    return {
        "schema": "repro-bench-v2",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "meta": collect_run_meta(n_threads, kernel_tier=kernel_tier),
        "records": list(records),
    }


def render_bench_table(records: Sequence[BenchRecord]) -> str:
    """Human-readable sweep table, one row per (cell, phase)."""
    if not records:
        return "(no benchmark records)"
    header = (
        f"{'case':<6} {'strategy':<22} {'backend':<9} {'tier':<6} {'w':>2} "
        f"{'phase':<16} {'median':>12} {'iqr':>12} {'pairs/s':>12}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        pairs = f"{r.pairs_per_s:,.0f}" if r.pairs_per_s else ""
        lines.append(
            f"{r.case:<6} {r.strategy:<22} {r.backend:<9} "
            f"{r.kernel_tier:<6} {r.n_workers:>2} "
            f"{r.phase:<16} {r.median_s:>10.6f} s {r.iqr_s:>10.6f} s "
            f"{pairs:>12}"
        )
    return "\n".join(lines)
