"""Synthetic workload generators beyond the paper's uniform crystals.

The paper's balance argument holds "under condition of simulation system
has uniformity of density"; these generators produce the systems where it
does not — voids, slabs, clusters, density gradients — so the imbalance
benchmarks can chart how SDC degrades and the conflict machinery can be
exercised off the happy path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.box import Box
from repro.geometry.lattice import bcc_lattice, perturb_positions
from repro.geometry.region import SphereRegion
from repro.md.atoms import Atoms
from repro.utils.rng import default_rng


def uniform_crystal(
    n_cells: int,
    perturbation: float = 0.05,
    seed: int = 0,
    lattice_a: float = 2.8665,
) -> Atoms:
    """The paper's workload: a perturbed periodic bcc crystal."""
    positions, box = bcc_lattice(lattice_a, (n_cells,) * 3)
    rng = default_rng(seed)
    positions = perturb_positions(positions, box, perturbation, rng)
    return Atoms(box=box, positions=positions)


def crystal_with_void(
    n_cells: int,
    void_fraction: float,
    perturbation: float = 0.05,
    seed: int = 0,
    lattice_a: float = 2.8665,
) -> Atoms:
    """A crystal with a spherical void removing ~``void_fraction`` of atoms.

    The void radius is solved from the target fraction; actual removal
    counts depend on which lattice sites fall inside.
    """
    if not 0.0 <= void_fraction < 1.0:
        raise ValueError("void_fraction must be in [0, 1)")
    atoms = uniform_crystal(n_cells, perturbation, seed, lattice_a)
    if void_fraction == 0.0:
        return atoms
    box = atoms.box
    target_volume = void_fraction * box.volume
    radius = (3.0 * target_volume / (4.0 * np.pi)) ** (1.0 / 3.0)
    void = SphereRegion(center=tuple(box.lengths / 2.0), radius=radius)
    keep = ~void.contains(atoms.positions, box)
    return Atoms(box=box, positions=atoms.positions[keep])


def crystal_slab(
    n_cells_xy: int,
    n_cells_z: int,
    vacuum_factor: float = 3.0,
    perturbation: float = 0.03,
    seed: int = 0,
    lattice_a: float = 2.8665,
) -> Atoms:
    """A free-standing film: crystal slab centered in a taller box.

    ``vacuum_factor`` is total-box-height over slab-height (> 1).
    """
    if vacuum_factor <= 1.0:
        raise ValueError("vacuum_factor must exceed 1")
    positions, solid_box = bcc_lattice(
        lattice_a, (n_cells_xy, n_cells_xy, n_cells_z)
    )
    lz = solid_box.lengths[2]
    box = Box(
        (solid_box.lengths[0], solid_box.lengths[1], vacuum_factor * lz)
    )
    offset = (vacuum_factor - 1.0) * lz / 2.0
    positions = positions + np.array([0.0, 0.0, offset])
    rng = default_rng(seed)
    positions = perturb_positions(positions, box, perturbation, rng)
    return Atoms(box=box, positions=positions)


def density_gradient_gas(
    n_atoms: int,
    box_lengths: Tuple[float, float, float],
    gradient_strength: float = 2.0,
    seed: int = 0,
) -> Atoms:
    """A gas whose density rises linearly along x.

    ``gradient_strength`` is the density ratio between the dense and
    dilute ends (1.0 = uniform).
    """
    if n_atoms < 1:
        raise ValueError("n_atoms must be >= 1")
    if gradient_strength < 1.0:
        raise ValueError("gradient_strength must be >= 1")
    rng = default_rng(seed)
    box = Box(box_lengths)
    # inverse-CDF sampling of p(x) ~ 1 + (g-1) x/L
    u = rng.uniform(0.0, 1.0, size=n_atoms)
    g = gradient_strength
    if g == 1.0:
        x_frac = u
    else:
        a = (g - 1.0) / 2.0
        x_frac = (-1.0 + np.sqrt(1.0 + 4.0 * a * (1.0 + a) * u)) / (2.0 * a)
    positions = np.column_stack(
        [
            x_frac * box.lengths[0],
            rng.uniform(0, box.lengths[1], n_atoms),
            rng.uniform(0, box.lengths[2], n_atoms),
        ]
    )
    return Atoms(box=box, positions=positions)


def nanoparticle(
    radius_cells: float,
    vacuum_cells: float = 2.0,
    perturbation: float = 0.03,
    seed: int = 0,
    lattice_a: float = 2.8665,
) -> Atoms:
    """A spherical bcc cluster floating in vacuum (open-cluster workload)."""
    if radius_cells <= 0:
        raise ValueError("radius_cells must be positive")
    n_cells = int(np.ceil(2 * (radius_cells + vacuum_cells)))
    positions, box = bcc_lattice(lattice_a, (n_cells,) * 3)
    center = box.lengths / 2.0
    keep = SphereRegion(
        center=tuple(center), radius=radius_cells * lattice_a
    ).contains(positions, box)
    atoms = Atoms(box=box, positions=positions[keep])
    rng = default_rng(seed)
    atoms.positions = perturb_positions(atoms.positions, box, perturbation, rng)
    return atoms
