"""Reproduction of Fig. 9: SDC vs CS vs SAP vs RC speedup curves.

The paper's figure shows, for each of the four test cases, the
speedup-vs-cores curves of the two-dimensional SDC method against the
Critical Section, Shared Array Privatization and Redundant Computations
strategies.  The figure's published claims (Section IV):

* SDC achieves near-linear speedup and is the highest everywhere;
* CS achieves the lowest efficiency ("not feasible");
* SAP beats CS and RC below 8 cores, then degrades (merge critical section
  + cache competition);
* RC is nearly linear, overtakes SAP past 8 cores, and lands ~1.7x below
  SDC on the medium/large cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.cases import PAPER_CASES, Case
from repro.harness.report import format_series
from repro.harness.runner import PAPER_THREADS, ExperimentRunner, SpeedupCell

#: strategies of the paper's figure, in legend order
FIG9_STRATEGIES: Sequence[str] = (
    "sdc-2d",
    "critical-section",
    "array-privatization",
    "redundant-computation",
)

#: the headline ratio the discussion quotes for medium/large cases
PAPER_SDC_OVER_RC: float = 1.7


@dataclass(frozen=True)
class Fig9Result:
    """All reproduced curves of one case panel."""

    case: Case
    thread_counts: Sequence[int]
    curves: Dict[str, List[SpeedupCell]]

    def series(self) -> Dict[str, List[Optional[float]]]:
        """Plain float series keyed by strategy."""
        return {
            name: [None if c.blank else c.speedup for c in cells]
            for name, cells in self.curves.items()
        }

    def render(self) -> str:
        """The panel as a text table."""
        return format_series(
            f"Fig. 9 panel — {self.case.label} ({self.case.n_atoms:,} atoms)",
            "cores",
            list(self.thread_counts),
            self.series(),
        )

    def sdc_over_rc(self, n_threads: int = 16) -> float:
        """SDC/RC performance ratio at ``n_threads`` (paper quotes ~1.7)."""
        idx = list(self.thread_counts).index(n_threads)
        sdc = self.curves["sdc-2d"][idx].speedup
        rc = self.curves["redundant-computation"][idx].speedup
        if sdc is None or rc is None or rc == 0:
            raise ValueError("ratio undefined for blank cells")
        return sdc / rc

    # --- qualitative claims (used by tests and EXPERIMENTS.md) ---------------

    def sdc_wins_everywhere(self) -> bool:
        """SDC >= every other curve at every core count."""
        series = self.series()
        for idx in range(len(self.thread_counts)):
            sdc = series["sdc-2d"][idx]
            for name in FIG9_STRATEGIES[1:]:
                other = series[name][idx]
                if sdc is not None and other is not None and other > sdc:
                    return False
        return True

    def cs_is_lowest_at_scale(self, min_threads: int = 8) -> bool:
        """CS is the slowest strategy at >= ``min_threads`` cores."""
        series = self.series()
        for idx, p in enumerate(self.thread_counts):
            if p < min_threads:
                continue
            cs = series["critical-section"][idx]
            for name in FIG9_STRATEGIES:
                if name == "critical-section":
                    continue
                other = series[name][idx]
                if cs is not None and other is not None and other < cs:
                    return False
        return True

    def rc_overtakes_sap(self) -> Optional[int]:
        """Smallest core count where RC > SAP (the paper's >8 crossover)."""
        series = self.series()
        for idx, p in enumerate(self.thread_counts):
            rc = series["redundant-computation"][idx]
            sap = series["array-privatization"][idx]
            if rc is not None and sap is not None and rc > sap:
                return p
        return None


def reproduce_fig9(
    case: Case,
    runner: Optional[ExperimentRunner] = None,
    thread_counts: Sequence[int] = PAPER_THREADS,
    strategies: Sequence[str] = FIG9_STRATEGIES,
) -> Fig9Result:
    """Regenerate one Fig. 9 panel."""
    runner = runner or ExperimentRunner()
    curves = {
        name: runner.speedup_series(case, name, thread_counts)
        for name in strategies
    }
    return Fig9Result(case=case, thread_counts=thread_counts, curves=curves)


def reproduce_all_panels(
    runner: Optional[ExperimentRunner] = None,
    cases: Sequence[Case] = PAPER_CASES,
) -> List[Fig9Result]:
    """All four panels of the figure."""
    runner = runner or ExperimentRunner()
    return [reproduce_fig9(case, runner) for case in cases]
