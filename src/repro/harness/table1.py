"""Reproduction of Table I: SDC speedups by decomposition dimensionality.

The paper's Table I reports the speedups of one/two/three-dimensional SDC
on all four cases at 2, 3, 4, 8, 12 and 16 cores, with blanks where 1-D
SDC cannot supply enough parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.cases import PAPER_CASES, Case
from repro.harness.report import format_table
from repro.harness.runner import PAPER_THREADS, ExperimentRunner, SpeedupCell

#: the published Table I, for paper-vs-measured comparison
#: keys: (case_key, dims); values aligned with PAPER_THREADS
PAPER_TABLE1: Dict[Tuple[str, int], List[Optional[float]]] = {
    ("small", 1): [1.71, 2.46, 3.07, 4.17, None, None],
    ("small", 2): [1.70, 2.46, 3.07, 4.74, 5.90, 6.43],
    ("small", 3): [1.66, 2.40, 2.99, 4.61, 5.74, 6.30],
    ("medium", 1): [1.84, 2.64, 3.37, 6.24, 6.33, None],
    ("medium", 2): [1.84, 2.65, 3.39, 6.20, 8.89, 10.90],
    ("medium", 3): [1.82, 2.65, 3.36, 6.16, 8.76, 10.78],
    ("large3", 1): [1.86, 2.76, 3.67, 6.82, 9.76, 9.59],
    ("large3", 2): [1.87, 2.78, 3.64, 6.74, 9.73, 12.31],
    ("large3", 3): [1.86, 2.75, 3.64, 6.64, 9.65, 12.29],
    ("large4", 1): [1.88, 2.79, 3.66, 6.30, 9.97, 9.82],
    ("large4", 2): [1.87, 2.80, 3.65, 6.77, 9.84, 12.42],
    ("large4", 3): [1.87, 2.80, 3.67, 6.74, 9.82, 12.34],
}


@dataclass(frozen=True)
class Table1Result:
    """All reproduced Table I cells plus rendering helpers."""

    cells: Dict[Tuple[str, int], List[SpeedupCell]]
    thread_counts: Sequence[int]

    def values(self, case_key: str, dims: int) -> List[Optional[float]]:
        """Speedups (or None for blanks) for one row."""
        return [
            None if c.blank else c.speedup for c in self.cells[(case_key, dims)]
        ]

    def render(self, cases: Sequence[Case] = PAPER_CASES) -> str:
        """The full table in the paper's layout (rows = dims, per case)."""
        blocks = []
        for case in cases:
            rows = [self.values(case.key, d) for d in (1, 2, 3)]
            labels = [f"SDC ({d}-dimensional)" for d in (1, 2, 3)]
            blocks.append(
                format_table(
                    f"{case.label} — {case.n_atoms:,} atoms "
                    f"(cores: {list(self.thread_counts)})",
                    labels,
                    [str(t) for t in self.thread_counts],
                    rows,
                )
            )
        return "\n\n".join(blocks)

    def max_relative_error(self) -> float:
        """Worst |ours - paper| / paper over non-blank matching cells."""
        worst = 0.0
        for key, targets in PAPER_TABLE1.items():
            ours = self.values(*key)
            for target, value in zip(targets, ours):
                if target is not None and value is not None:
                    worst = max(worst, abs(value - target) / target)
        return worst

    def mean_relative_error(self) -> float:
        """Mean relative error over comparable cells; blank mismatches
        count as 100 % error."""
        total, n = 0.0, 0
        for key, targets in PAPER_TABLE1.items():
            ours = self.values(*key)
            for target, value in zip(targets, ours):
                n += 1
                if (target is None) != (value is None):
                    total += 1.0
                elif target is not None:
                    total += abs(value - target) / target
        return total / n if n else 0.0

    def blank_pattern_matches(self) -> bool:
        """Whether every blank cell coincides with the paper's dashes."""
        for key, targets in PAPER_TABLE1.items():
            ours = self.values(*key)
            for target, value in zip(targets, ours):
                if (target is None) != (value is None):
                    return False
        return True


def reproduce_table1(
    runner: Optional[ExperimentRunner] = None,
    cases: Sequence[Case] = PAPER_CASES,
    thread_counts: Sequence[int] = PAPER_THREADS,
) -> Table1Result:
    """Regenerate every Table I cell on the simulated machine."""
    runner = runner or ExperimentRunner()
    cells: Dict[Tuple[str, int], List[SpeedupCell]] = {}
    for case in cases:
        for dims in (1, 2, 3):
            cells[(case.key, dims)] = [
                runner.sdc_speedup(case, dims, p) for p in thread_counts
            ]
    return Table1Result(cells=cells, thread_counts=thread_counts)
