"""The ``repro scale`` driver: worker sweeps -> efficiency attribution.

The paper's headline evidence (Fig. 9) is speedup-vs-cores; this harness
measures that curve for one (case, strategy, backend, kernel-tier) cell
and then goes one step further than the figure: it says *where the lost
efficiency went*.  For every worker count ``p`` in the sweep it runs the
same short MD workload, times the force/density window (the only part
the paper times), and derives

* **speedup**          ``S(p) = T(1) / T(p)``;
* **efficiency**       ``E(p) = S(p) / p``;
* **Karp–Flatt**       ``e(p) = (1/S - 1/p) / (1 - 1/p)`` — the
  experimentally-determined serial fraction (the standard scalability
  diagnostic: an ``e`` that *grows* with ``p`` indicates overhead, not an
  inherently serial workload);

and attributes the lost core-seconds ``p*T(p) - T(1)`` into disjoint
mechanisms using the task/barrier spans recorded by the tracer and the
per-worker CPU tracks of the :class:`~repro.obs.resources.ResourceSampler`:

* ``imbalance`` — cores idle because tasks within a phase were uneven
  (per phase: ``(max_task - mean_task) * n_tasks``);
* ``barrier``   — residual synchronization slack beyond imbalance
  (summed barrier-wait spans minus the imbalance share);
* ``serial``    — core-seconds with nothing scheduled at all: the
  embedding phase, position sync, dispatch (budget minus task work minus
  barrier waits);
* ``resource_pressure`` — task time during which workers were not
  actually on a CPU (sub-100% sampled utilization: descheduling, memory
  stall pressure);
* ``excess_work`` — task core-seconds beyond the baseline ``T(1)``
  (redundant computation, per-worker overheads).

Each fraction is expressed relative to the core-second budget
``p * T(p)``, so ``efficiency + losses`` accounts for the whole budget.
Every sweep point becomes one record; ``repro scale`` appends them as a
``kind:"scaling"`` entry to the history store (pre-existing readers
filter by kind and are unaffected) and writes the usual artifact set —
``trace.json`` with resource counter tracks merged in, ``metrics.jsonl``,
``scaling.json``, ``health.jsonl`` — which ``repro report`` renders as an
efficiency-curve + loss-attribution panel.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.harness.bench import BenchSkip
from repro.harness.cases import case_by_key
from repro.harness.tracing import _make_calculator
from repro.obs.exporters import render_trace_summary, write_trace_json
from repro.obs.metrics import MetricsRegistry, record_span_metrics
from repro.obs.recorder import get_recorder
from repro.obs.resources import ResourceSampler
from repro.obs.runlog import collect_run_meta
from repro.obs.tracer import CAT_BARRIER, CAT_TASK, Span, Tracer

__all__ = [
    "SCALING_SCHEMA",
    "ScalePoint",
    "ScaleReport",
    "karp_flatt",
    "run_scale",
]

SCALING_SCHEMA = "repro-scaling-v1"

#: loss mechanisms, in reporting order
LOSS_COMPONENTS = (
    "serial",
    "imbalance",
    "barrier",
    "resource_pressure",
    "excess_work",
)

DEFAULT_WORKERS = (1, 2)


def karp_flatt(speedup: float, p: int) -> Optional[float]:
    """Experimentally-determined serial fraction ``e(p)``; None for p<=1."""
    if p <= 1 or speedup <= 0:
        return None
    return (1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)


@dataclass
class ScalePoint:
    """One measured sweep point with its derived efficiency quantities."""

    case: str
    strategy: str
    backend: str
    kernel_tier: str
    n_workers: int
    n_steps: int
    #: measured force/density wall-clock of the run window, seconds
    total_s: float
    #: the sweep's baseline time T(1) this point is normalized against
    t1_s: float
    speedup: float
    efficiency: float
    karp_flatt: Optional[float]
    #: loss fractions of the core-second budget ``p * total_s``
    loss: Dict[str, float] = field(default_factory=dict)
    dominant_loss: Optional[str] = None
    #: the resource sampler's digest (empty when sampling was off)
    resources: Dict[str, object] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)

    @property
    def label(self) -> str:
        return (
            f"{self.case}/{self.strategy}/{self.backend}/w{self.n_workers}"
        )

    def to_record(self) -> Dict[str, object]:
        """Flat history/scaling.json record (spans stay in trace.json)."""
        record: Dict[str, object] = {
            "case": self.case,
            "strategy": self.strategy,
            "backend": self.backend,
            "kernel_tier": self.kernel_tier,
            "n_workers": self.n_workers,
            "n_steps": self.n_steps,
            "phase": "total",
            "median_s": self.total_s,
            "t1_s": self.t1_s,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "karp_flatt": self.karp_flatt,
            "dominant_loss": self.dominant_loss,
            "resources": dict(self.resources),
        }
        for name in LOSS_COMPONENTS:
            record[f"loss_{name}"] = self.loss.get(name, 0.0)
        return record


@dataclass
class ScaleReport:
    """Everything one ``repro scale`` invocation produced."""

    points: List[ScalePoint]
    registry: MetricsRegistry
    case: str
    strategy: str
    backend: str
    kernel_tier: str
    skipped: List[str] = field(default_factory=list)
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    scaling_path: Optional[str] = None
    health_path: Optional[str] = None
    store_path: Optional[str] = None

    def records(self) -> List[Dict[str, object]]:
        return [p.to_record() for p in self.points]

    def span_groups(self) -> List[Tuple[str, Sequence[Span]]]:
        return [(p.label, p.spans) for p in self.points]

    def render_summary(self, top: int = 10) -> str:
        """Terminal table naming the dominant loss mechanism per point."""
        lines: List[str] = []
        header = (
            f"{'workers':>7} {'T(p)':>10} {'speedup':>8} "
            f"{'efficiency':>10} {'Karp-Flatt':>10}  dominant loss"
        )
        lines.append(
            f"scaling sweep {self.case}/{self.strategy}/{self.backend} "
            f"({self.kernel_tier}):"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for p in self.points:
            kf = f"{p.karp_flatt:.3f}" if p.karp_flatt is not None else "-"
            if p.dominant_loss is not None:
                share = p.loss.get(p.dominant_loss, 0.0)
                dominant = f"{p.dominant_loss} ({share:.0%} of core-seconds)"
            else:
                dominant = "-"
            lines.append(
                f"{p.n_workers:>7} {p.total_s:>9.4f}s {p.speedup:>7.2f}x "
                f"{p.efficiency:>9.1%} {kf:>10}  {dominant}"
            )
        for skip in self.skipped:
            lines.append(f"skip: {skip}")
        lines.append("")
        lines.append(render_trace_summary(self.registry, top=top))
        return "\n".join(lines)


def _attribute_losses(
    spans: Sequence[Span],
    window_start_s: float,
    total_s: float,
    t1_s: float,
    n_workers: int,
    worker_cpu_percent: Optional[float],
) -> Dict[str, float]:
    """Split the core-second budget ``p * T`` into loss fractions.

    Only spans inside the measured window count (the warmup evaluation
    pays pool fork / arena setup / JIT and is excluded from ``total_s``).
    """
    budget = n_workers * total_s
    if budget <= 0:
        return {name: 0.0 for name in LOSS_COMPONENTS}
    tasks: Dict[int, List[float]] = {}
    work = 0.0
    for span in spans:
        if span.start_s < window_start_s:
            continue
        if span.category == CAT_TASK:
            work += span.duration_s
            phase = span.args.get("phase")
            if isinstance(phase, int):
                tasks.setdefault(phase, []).append(span.duration_s)
    barrier_total = sum(
        s.duration_s
        for s in spans
        if s.category == CAT_BARRIER and s.start_s >= window_start_s
    )
    imbalance = 0.0
    for durations in tasks.values():
        if len(durations) > 1:
            mean = sum(durations) / len(durations)
            imbalance += (max(durations) - mean) * len(durations)
    imbalance = min(imbalance, barrier_total) if barrier_total else imbalance
    barrier_rest = max(0.0, barrier_total - imbalance)
    serial = max(0.0, budget - work - barrier_total)
    pressure = 0.0
    if worker_cpu_percent is not None and worker_cpu_percent < 100.0:
        pressure = (1.0 - worker_cpu_percent / 100.0) * work
    excess = max(0.0, work - t1_s)
    return {
        "serial": serial / budget,
        "imbalance": imbalance / budget,
        "barrier": barrier_rest / budget,
        "resource_pressure": pressure / budget,
        "excess_work": excess / budget,
    }


def _measure_point(
    case_key: str,
    strategy_key: str,
    backend_key: str,
    n_workers: int,
    steps: int,
    registry: MetricsRegistry,
    kernel_tier: Optional[str],
    sample_resources: bool,
    sample_interval_s: float,
) -> Tuple[float, float, List[Span], Dict[str, object], Optional[float], str]:
    """Run one sweep point; returns its timing, spans, and resource digest."""
    from repro.md.simulation import Simulation
    from repro.potentials import fe_potential

    label = f"{case_key}/{strategy_key}/{backend_key}/w{n_workers}"
    calculator, cleanup = _make_calculator(
        strategy_key, backend_key, n_workers, kernel_tier=kernel_tier
    )
    tier = kernels.get(kernel_tier) if kernel_tier is not None else None
    tier_name = (tier if tier is not None else kernels.active_tier()).name
    tracer = Tracer()
    sampler: Optional[ResourceSampler] = None
    try:
        attach = getattr(calculator, "attach_tracer", None)
        if attach is not None:
            attach(tracer)
        atoms = case_by_key(case_key).build(temperature=50.0)
        sim = Simulation(
            atoms, fe_potential(), calculator=calculator, tracer=tracer
        )
        with kernels.use_tier(tier):
            # warmup evaluation: pool fork, shm arena, decomposition,
            # neighbor build, JIT — excluded from the measured window
            sim.compute_forces()
            if sample_resources:
                sampler = ResourceSampler(
                    interval_s=sample_interval_s, calculator=calculator
                )
                sampler.start()
            window_start = time.perf_counter()
            forces_before = sim.stopwatch.total("forces")
            sim.run(steps, sample_every=max(1, steps))
            total_s = sim.stopwatch.total("forces") - forces_before
        if sampler is not None:
            sampler.stop()
        record_span_metrics(registry, tracer, run=label)
        spans = tracer.spans
        resources: Dict[str, object] = {}
        worker_cpu: Optional[float] = None
        if sampler is not None:
            spans = spans + sampler.counter_spans()
            resources = sampler.summary()
            worker_cpu = sampler.worker_mean_cpu_percent()
            sampler.record_metrics(registry, run=label)
            sampler.record_health_summary(run=label)
    finally:
        if sampler is not None:
            sampler.stop()
        detach = getattr(calculator, "detach_tracer", None)
        if detach is not None:
            detach()
        cleanup()
    return total_s, window_start, spans, resources, worker_cpu, tier_name


def run_scale(
    case: str = "small",
    strategy: str = "sdc",
    backend: str = "processes",
    workers: Sequence[int] = DEFAULT_WORKERS,
    steps: int = 3,
    kernel_tier: Optional[str] = None,
    output_dir: Optional[str] = None,
    store_path: Optional[str] = None,
    sample_resources: bool = True,
    sample_interval_s: float = 0.05,
    on_skip: Optional[Callable[[str], None]] = None,
) -> ScaleReport:
    """Sweep worker counts for one cell and attribute the efficiency.

    ``workers`` should include 1 — ``T(1)`` is the baseline every other
    point is normalized against.  Without it the smallest swept count
    ``p_min`` stands in, with ``T(1)`` estimated as ``p_min * T(p_min)``
    (optimistic: assumes the reference point scaled perfectly).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    worker_list = sorted(set(int(w) for w in workers))
    if not worker_list or worker_list[0] < 1:
        raise ValueError("workers must be a non-empty list of counts >= 1")
    registry = MetricsRegistry()
    tier_name = (
        kernels.get(kernel_tier) if kernel_tier is not None
        else kernels.active_tier()
    ).name
    report = ScaleReport(
        points=[],
        registry=registry,
        case=case,
        strategy=strategy,
        backend=backend,
        kernel_tier=tier_name,
    )
    measured: List[Tuple[int, float, float, List[Span], Dict[str, object], Optional[float], str]] = []
    for p in worker_list:
        try:
            total_s, window_start, spans, resources, worker_cpu, tier_ran = (
                _measure_point(
                    case,
                    strategy,
                    backend,
                    p,
                    steps,
                    registry,
                    kernel_tier,
                    sample_resources,
                    sample_interval_s,
                )
            )
        except BenchSkip as skip:
            message = f"{case}/{strategy}/{backend}/w{p}: {skip}"
            report.skipped.append(message)
            if on_skip is not None:
                on_skip(message)
            continue
        measured.append(
            (p, total_s, window_start, spans, resources, worker_cpu, tier_ran)
        )
    if measured:
        report.kernel_tier = measured[0][6]
        p_ref, t_ref = measured[0][0], measured[0][1]
        t1_s = t_ref if p_ref == 1 else p_ref * t_ref
        for p, total_s, window_start, spans, resources, worker_cpu, tier_ran in measured:
            speedup = t1_s / total_s if total_s > 0 else 0.0
            efficiency = speedup / p
            loss = _attribute_losses(
                spans, window_start, total_s, t1_s, p, worker_cpu
            )
            dominant = None
            if p > 1:
                worst = max(loss.items(), key=lambda kv: kv[1])
                if worst[1] > 0.0:
                    dominant = worst[0]
            report.points.append(
                ScalePoint(
                    case=case,
                    strategy=strategy,
                    backend=backend,
                    kernel_tier=tier_ran,
                    n_workers=p,
                    n_steps=steps,
                    total_s=total_s,
                    t1_s=t1_s,
                    speedup=speedup,
                    efficiency=efficiency,
                    karp_flatt=karp_flatt(speedup, p),
                    loss=loss,
                    dominant_loss=dominant,
                    resources=resources,
                    spans=spans,
                )
            )
    meta = collect_run_meta(kernel_tier=report.kernel_tier)
    if output_dir is not None:
        import json

        from repro.obs.atomicio import atomic_write_text

        os.makedirs(output_dir, exist_ok=True)
        report.trace_path = os.path.join(output_dir, "trace.json")
        report.metrics_path = os.path.join(output_dir, "metrics.jsonl")
        report.scaling_path = os.path.join(output_dir, "scaling.json")
        report.health_path = os.path.join(output_dir, "health.jsonl")
        write_trace_json(report.trace_path, report.span_groups(), meta=meta)
        registry.write_jsonl(report.metrics_path)
        atomic_write_text(
            report.scaling_path,
            json.dumps(
                {
                    "schema": SCALING_SCHEMA,
                    "meta": meta,
                    "records": report.records(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
        get_recorder().dump(report.health_path)
    if store_path is not None and report.points:
        from repro.obs.history import RunStore

        store = RunStore(store_path)
        store.append_records(
            "scaling", report.records(), meta=meta, source="scaling.json"
        )
        report.store_path = store.path
    return report
