"""Reproduction of the Section II.D data-reordering claim.

The paper (Eq. 3): *"After using data reordering technique, the simulation
efficiency increased was 12% in serial simulations and was 39% in parallel
simulations in our experiments on our large test case."*

Efficiency increase = ``(T_unoptimized - T_optimized) * 100 /
T_unoptimized``.  The reordering changes nothing about the work — only the
data layout — so in the simulated machine the entire effect flows through
the locality score: the spatially-sorted layout scores
:data:`~repro.harness.runner.OPTIMIZED_LOCALITY`, the naive input order
:data:`~repro.harness.runner.UNOPTIMIZED_LOCALITY` (both anchored against
the measurable :func:`repro.core.reorder.locality_score` of real sorted vs
shuffled systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.cases import Case, case_by_key
from repro.harness.report import format_comparison
from repro.harness.runner import (
    OPTIMIZED_LOCALITY,
    UNOPTIMIZED_LOCALITY,
    ExperimentRunner,
)

#: the paper's measured efficiency increases (Eq. 3), in percent
PAPER_SERIAL_GAIN = 12.0
PAPER_PARALLEL_GAIN = 39.0


@dataclass(frozen=True)
class ReorderingResult:
    """Efficiency increases from data reordering, serial and parallel."""

    case: Case
    n_threads: int
    serial_gain_percent: float
    parallel_gain_percent: float

    def render(self) -> str:
        """Paper-vs-measured comparison table."""
        return format_comparison(
            f"Section II.D data reordering — {self.case.label}, "
            f"{self.n_threads} threads (Eq. 3 efficiency increase, %)",
            [
                ("serial gain %", PAPER_SERIAL_GAIN, self.serial_gain_percent),
                (
                    "parallel gain %",
                    PAPER_PARALLEL_GAIN,
                    self.parallel_gain_percent,
                ),
            ],
        )


def efficiency_increase(t_unoptimized: float, t_optimized: float) -> float:
    """Eq. 3 of the paper, in percent."""
    if t_unoptimized <= 0:
        raise ValueError("unoptimized time must be positive")
    return (t_unoptimized - t_optimized) * 100.0 / t_unoptimized


def reproduce_reordering(
    runner: Optional[ExperimentRunner] = None,
    case: Optional[Case] = None,
    n_threads: int = 16,
    optimized_locality: float = OPTIMIZED_LOCALITY,
    unoptimized_locality: float = UNOPTIMIZED_LOCALITY,
) -> ReorderingResult:
    """Regenerate the 12 %/39 % reordering gains on the large case."""
    runner = runner or ExperimentRunner()
    case = case or case_by_key("large3")
    t_serial_opt = runner.serial_time(case, locality=optimized_locality).seconds
    t_serial_un = runner.serial_time(case, locality=unoptimized_locality).seconds
    opt = runner.strategy_speedup(
        case, "sdc-2d", n_threads, locality=optimized_locality
    )
    un = runner.strategy_speedup(
        case, "sdc-2d", n_threads, locality=unoptimized_locality
    )
    return ReorderingResult(
        case=case,
        n_threads=n_threads,
        serial_gain_percent=efficiency_increase(t_serial_un, t_serial_opt),
        parallel_gain_percent=efficiency_increase(
            un.parallel_seconds, opt.parallel_seconds
        ),
    )
