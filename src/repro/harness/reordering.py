"""Reproduction of the Section II.D data-reordering claim.

The paper (Eq. 3): *"After using data reordering technique, the simulation
efficiency increased was 12% in serial simulations and was 39% in parallel
simulations in our experiments on our large test case."*

Efficiency increase = ``(T_unoptimized - T_optimized) * 100 /
T_unoptimized``.  The reordering changes nothing about the work — only the
data layout.  The module offers both readings of the claim:

* **simulated** (:func:`reproduce_reordering`): the effect flows through
  the locality score of the simulated machine — the spatially-sorted
  layout scores :data:`~repro.harness.runner.OPTIMIZED_LOCALITY`, the
  naive input order :data:`~repro.harness.runner.UNOPTIMIZED_LOCALITY`
  (both anchored against the measurable
  :func:`repro.core.reorder.locality_score` of real sorted vs shuffled
  systems);
* **measured** (:func:`measure_reordering`, or ``measured=True``): real
  wall-clock of the same kernels on a cell-sorted layout
  (:func:`repro.md.neighbor.verlet.build_reordered_neighbor_list`) versus
  a deliberately shuffled layout, warmup + repeats + median/IQR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.harness.cases import Case, case_by_key
from repro.harness.report import format_comparison
from repro.harness.runner import (
    OPTIMIZED_LOCALITY,
    UNOPTIMIZED_LOCALITY,
    ExperimentRunner,
)
from repro.utils.timers import median_iqr

#: the paper's measured efficiency increases (Eq. 3), in percent
PAPER_SERIAL_GAIN = 12.0
PAPER_PARALLEL_GAIN = 39.0


@dataclass(frozen=True)
class ReorderingResult:
    """Efficiency increases from data reordering, serial and parallel."""

    case: Case
    n_threads: int
    serial_gain_percent: float
    parallel_gain_percent: float

    def render(self) -> str:
        """Paper-vs-measured comparison table."""
        return format_comparison(
            f"Section II.D data reordering — {self.case.label}, "
            f"{self.n_threads} threads (Eq. 3 efficiency increase, %)",
            [
                ("serial gain %", PAPER_SERIAL_GAIN, self.serial_gain_percent),
                (
                    "parallel gain %",
                    PAPER_PARALLEL_GAIN,
                    self.parallel_gain_percent,
                ),
            ],
        )


def efficiency_increase(t_unoptimized: float, t_optimized: float) -> float:
    """Eq. 3 of the paper, in percent."""
    if t_unoptimized <= 0:
        raise ValueError("unoptimized time must be positive")
    return (t_unoptimized - t_optimized) * 100.0 / t_unoptimized


def reproduce_reordering(
    runner: Optional[ExperimentRunner] = None,
    case: Optional[Case] = None,
    n_threads: int = 16,
    optimized_locality: float = OPTIMIZED_LOCALITY,
    unoptimized_locality: float = UNOPTIMIZED_LOCALITY,
    measured: bool = False,
) -> Union[ReorderingResult, "MeasuredReorderingResult"]:
    """Regenerate the 12 %/39 % reordering gains on the large case.

    With ``measured=True`` the simulated machine is bypassed entirely:
    the gains come from real wall-clock on a materialized case (defaults
    to ``mini`` — the paper-scale cases are too large to materialize
    here) via :func:`measure_reordering`.
    """
    if measured:
        return measure_reordering(
            case=case or case_by_key("mini"),
            n_threads=min(n_threads, 4),
        )
    runner = runner or ExperimentRunner()
    case = case or case_by_key("large3")
    t_serial_opt = runner.serial_time(case, locality=optimized_locality).seconds
    t_serial_un = runner.serial_time(case, locality=unoptimized_locality).seconds
    opt = runner.strategy_speedup(
        case, "sdc-2d", n_threads, locality=optimized_locality
    )
    un = runner.strategy_speedup(
        case, "sdc-2d", n_threads, locality=unoptimized_locality
    )
    return ReorderingResult(
        case=case,
        n_threads=n_threads,
        serial_gain_percent=efficiency_increase(t_serial_un, t_serial_opt),
        parallel_gain_percent=efficiency_increase(
            un.parallel_seconds, opt.parallel_seconds
        ),
    )


# --- measured mode: real wall-clock on materialized layouts ------------------


@dataclass(frozen=True)
class MeasuredReorderingResult:
    """Real sorted-vs-shuffled kernel timings (median/IQR over repeats).

    ``serial_*`` times :func:`repro.potentials.eam.compute_eam_forces_serial`;
    ``parallel_*`` times the SDC-2D strategy on a thread backend.  Gains are
    Eq. 3 over the medians; ``max_force_dev`` is the largest absolute
    difference between the sorted layout's forces (mapped back through the
    inverse permutation) and the baseline layout's forces — a built-in
    equivalence check on the permutation bookkeeping.
    """

    case: Case
    n_threads: int
    repeats: int
    serial_sorted_s: float
    serial_sorted_iqr_s: float
    serial_shuffled_s: float
    serial_shuffled_iqr_s: float
    parallel_sorted_s: float
    parallel_sorted_iqr_s: float
    parallel_shuffled_s: float
    parallel_shuffled_iqr_s: float
    max_force_dev: float

    @property
    def serial_gain_percent(self) -> float:
        return efficiency_increase(self.serial_shuffled_s, self.serial_sorted_s)

    @property
    def parallel_gain_percent(self) -> float:
        return efficiency_increase(
            self.parallel_shuffled_s, self.parallel_sorted_s
        )

    def render(self) -> str:
        """Paper-vs-measured comparison table (real wall-clock)."""
        header = (
            f"Section II.D data reordering (measured) — {self.case.label}, "
            f"{self.n_threads} threads, {self.repeats} repeats\n"
            f"  serial   sorted {self.serial_sorted_s:.6f} s  "
            f"shuffled {self.serial_shuffled_s:.6f} s\n"
            f"  parallel sorted {self.parallel_sorted_s:.6f} s  "
            f"shuffled {self.parallel_shuffled_s:.6f} s\n"
        )
        return header + format_comparison(
            "Eq. 3 efficiency increase, % (measured wall-clock)",
            [
                ("serial gain %", PAPER_SERIAL_GAIN, self.serial_gain_percent),
                (
                    "parallel gain %",
                    PAPER_PARALLEL_GAIN,
                    self.parallel_gain_percent,
                ),
            ],
        )


def _time_median(
    fn: Callable[[], object], warmup: int, repeats: int
) -> Tuple[float, float]:
    """Median/IQR wall-clock of ``fn`` after ``warmup`` discarded calls."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return median_iqr(samples)


def measure_reordering(
    case: Optional[Case] = None,
    n_threads: int = 2,
    warmup: int = 1,
    repeats: int = 5,
    seed: int = 2024,
) -> MeasuredReorderingResult:
    """Time real kernels on sorted vs shuffled layouts of ``case``.

    Three layouts of the same physical system are materialized:

    * *baseline* — lattice construction order (correctness anchor only);
    * *sorted* — atoms renumbered in link-cell order with a CSR-sorted
      neighbor list (:func:`build_reordered_neighbor_list`), the paper's
      Section II.D optimization;
    * *shuffled* — a seeded random permutation, the adversarial layout.

    Serial timings run the reference kernel; parallel timings run SDC-2D
    on a :class:`~repro.parallel.backends.threads.ThreadBackend`.  The
    decomposition cache is warmed before timing (steady-state cost, as in
    an MD run between rebuilds).
    """
    from repro.core.strategies.sdc import SDCStrategy
    from repro.md.neighbor.verlet import (
        build_neighbor_list,
        build_reordered_neighbor_list,
    )
    from repro.parallel.backends.threads import ThreadBackend
    from repro.potentials import fe_potential
    from repro.potentials.eam import compute_eam_forces_serial
    from repro.utils.rng import default_rng

    case = case or case_by_key("mini")
    potential = fe_potential()
    base = case.build()

    nlist_base = build_neighbor_list(
        base.positions, base.box, potential.cutoff
    )
    baseline = compute_eam_forces_serial(potential, base, nlist_base)

    sorted_atoms = base.copy()
    nlist_sorted, perm, inverse = build_reordered_neighbor_list(
        base.positions, base.box, potential.cutoff
    )
    sorted_atoms.reorder(perm)

    shuffled_atoms = base.copy()
    shuffle = default_rng(seed).permutation(base.n_atoms)
    shuffled_atoms.reorder(shuffle)
    nlist_shuffled = build_neighbor_list(
        shuffled_atoms.positions, shuffled_atoms.box, potential.cutoff
    )

    sorted_result = compute_eam_forces_serial(
        potential, sorted_atoms, nlist_sorted
    )
    max_force_dev = float(
        np.max(np.abs(sorted_result.forces[inverse] - baseline.forces))
    )

    serial_sorted = _time_median(
        lambda: compute_eam_forces_serial(potential, sorted_atoms, nlist_sorted),
        warmup,
        repeats,
    )
    serial_shuffled = _time_median(
        lambda: compute_eam_forces_serial(
            potential, shuffled_atoms, nlist_shuffled
        ),
        warmup,
        repeats,
    )

    with ThreadBackend(n_threads) as backend:
        sdc_sorted = SDCStrategy(dims=2, n_threads=n_threads, backend=backend)
        parallel_sorted = _time_median(
            lambda: sdc_sorted.compute(potential, sorted_atoms, nlist_sorted),
            warmup,
            repeats,
        )
        sdc_shuffled = SDCStrategy(dims=2, n_threads=n_threads, backend=backend)
        parallel_shuffled = _time_median(
            lambda: sdc_shuffled.compute(
                potential, shuffled_atoms, nlist_shuffled
            ),
            warmup,
            repeats,
        )

    return MeasuredReorderingResult(
        case=case,
        n_threads=n_threads,
        repeats=repeats,
        serial_sorted_s=serial_sorted[0],
        serial_sorted_iqr_s=serial_sorted[1],
        serial_shuffled_s=serial_shuffled[0],
        serial_shuffled_iqr_s=serial_shuffled[1],
        parallel_sorted_s=parallel_sorted[0],
        parallel_sorted_iqr_s=parallel_sorted[1],
        parallel_shuffled_s=parallel_shuffled[0],
        parallel_shuffled_iqr_s=parallel_shuffled[1],
        max_force_dev=max_force_dev,
    )
