"""Plain-text rendering of reproduced tables and figures.

The benchmarks print these so a ``pytest benchmarks/ --benchmark-only`` run
leaves the paper's rows/series in the captured output, and EXPERIMENTS.md
embeds them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_cell(value: Optional[float], width: int = 6) -> str:
    """One numeric table cell; ``None`` renders as the paper's blank."""
    if value is None:
        return " " * (width - 1) + "-"
    return f"{value:{width}.2f}"


def format_table(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    rows: Sequence[Sequence[Optional[float]]],
    label_width: int = 24,
) -> str:
    """Fixed-width table with a title line (Table I style)."""
    if len(rows) != len(row_labels):
        raise ValueError("rows and row_labels must align")
    lines = [title]
    header = " " * label_width + "".join(f"{c:>7}" for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(row_labels, rows):
        if len(row) != len(col_labels):
            raise ValueError(f"row {label!r} has {len(row)} cells")
        cells = "".join(" " + format_cell(v) for v in row)
        lines.append(f"{label:<{label_width}}{cells}")
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[int],
    series: Dict[str, Sequence[Optional[float]]],
) -> str:
    """Multi-series table (Fig. 9 style: one column per x, one row per curve)."""
    labels = list(series)
    width = max([len(x_label)] + [len(label) for label in labels]) + 2
    lines = [title]
    lines.append(
        f"{x_label:<{width}}" + "".join(f"{x:>7}" for x in x_values)
    )
    lines.append("-" * (width + 7 * len(x_values)))
    for label in labels:
        values = series[label]
        if len(values) != len(x_values):
            raise ValueError(f"series {label!r} has {len(values)} points")
        cells = "".join(" " + format_cell(v) for v in values)
        lines.append(f"{label:<{width}}{cells}")
    return "\n".join(lines)


def format_comparison(
    title: str,
    rows: List[tuple[str, float, float]],
    left: str = "paper",
    right: str = "ours",
) -> str:
    """Side-by-side paper-vs-measured listing for scalar claims."""
    width = max([10] + [len(r[0]) for r in rows]) + 2
    lines = [title, f"{'quantity':<{width}}{left:>10}{right:>10}"]
    lines.append("-" * (width + 20))
    for name, paper_value, ours in rows:
        lines.append(f"{name:<{width}}{paper_value:>10.2f}{ours:>10.2f}")
    return "\n".join(lines)
