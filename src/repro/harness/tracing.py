"""The ``repro trace`` driver: traced case × strategy × backend runs.

For every sweep cell it runs a short real MD trajectory with a
:class:`~repro.obs.tracer.Tracer` attached to the force calculator and
the MD driver, derives the load-balance metrics from the decomposition
and the recorded spans, and emits three artifacts:

* ``trace.json`` — Chrome trace-event / Perfetto timeline, one trace
  process per sweep cell, one track per thread/worker;
* ``metrics.jsonl`` — the :class:`~repro.obs.metrics.MetricsRegistry`
  stream (pairs processed, per-subdomain sizes, per-color static and
  measured load-imbalance ratios, halo fraction, barrier slack);
* ``run.jsonl`` — the structured run log (environment meta, per-sample
  observables, neighbor rebuilds);
* ``health.jsonl`` — the flight-recorder dump for the whole sweep
  (engine/kernel/scheduler lifecycle events plus any physics invariant
  breaches from the per-cell :class:`~repro.obs.health.HealthMonitor`).

The text summary ranks the worst-balanced color phases across all cells.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro import kernels
from repro.harness.bench import KNOWN_BACKENDS, KNOWN_STRATEGIES, BenchSkip
from repro.harness.cases import case_by_key
from repro.obs.exporters import render_trace_summary, write_trace_json
from repro.obs.metrics import (
    MetricsRegistry,
    record_schedule_metrics,
    record_span_metrics,
)
from repro.obs.health import HealthMonitor
from repro.obs.recorder import get_recorder
from repro.obs.runlog import RunLog, collect_run_meta
from repro.obs.tracer import Span, Tracer

#: default sweep of ``repro trace`` (the CI smoke configuration)
DEFAULT_CASES = ("tiny",)
DEFAULT_STRATEGIES = ("sdc",)
DEFAULT_BACKENDS = ("threads",)


@dataclass
class TracedRun:
    """Spans and bookkeeping of one traced sweep cell."""

    label: str
    case: str
    strategy: str
    backend: str
    n_workers: int
    n_steps: int
    spans: List[Span] = field(default_factory=list)
    #: resolved kernel tier the cell's force kernels ran on
    kernel_tier: str = "numpy"

    @property
    def n_spans(self) -> int:
        return len(self.spans)


@dataclass
class TraceReport:
    """Everything one ``repro trace`` invocation produced."""

    runs: List[TracedRun]
    registry: MetricsRegistry
    skipped: List[str] = field(default_factory=list)
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    runlog_path: Optional[str] = None
    health_path: Optional[str] = None
    store_path: Optional[str] = None

    def span_groups(self) -> List[Tuple[str, Sequence[Span]]]:
        return [(run.label, run.spans) for run in self.runs]

    def render_summary(self, top: int = 10) -> str:
        lines = []
        for run in self.runs:
            total = sum(s.duration_s for s in run.spans if s.category == "md")
            lines.append(
                f"{run.label}: {run.n_spans} spans over {run.n_steps} MD "
                f"steps ({run.n_workers} workers, {total * 1e3:.1f} ms in "
                f"md spans)"
            )
        for skip in self.skipped:
            lines.append(f"skip: {skip}")
        lines.append("")
        lines.append(render_trace_summary(self.registry, top=top))
        return "\n".join(lines)


def _strategy_dims(strategy_key: str) -> int:
    """Decomposition dims encoded in a strategy key (``sdc-3d`` -> 3)."""
    if strategy_key.startswith("sdc-") or strategy_key.startswith(
        "localwrite-"
    ):
        return int(strategy_key.split("-")[-1][0])
    return 2


def _base_strategy(strategy_key: str) -> str:
    """Registry name for a sweep strategy key (``sdc-2d`` -> ``sdc``)."""
    if strategy_key.startswith("sdc"):
        return "sdc"
    return strategy_key


def _make_calculator(
    strategy_key: str,
    backend_key: str,
    n_workers: int,
    kernel_tier: Optional[str] = None,
) -> Tuple[object, Callable[[], None]]:
    """Build (force calculator, cleanup) for one traced sweep cell."""
    base = _base_strategy(strategy_key)
    if strategy_key != "serial" and strategy_key not in KNOWN_STRATEGIES:
        if base not in ("sdc",):
            raise BenchSkip(f"unknown strategy {strategy_key!r}")
    if backend_key not in KNOWN_BACKENDS:
        raise BenchSkip(f"unknown backend {backend_key!r}")
    if strategy_key == "serial":
        if backend_key != "serial":
            raise BenchSkip(
                "the serial strategy has no backend parallelism to trace"
            )
        from repro.core.strategies import STRATEGY_REGISTRY

        return STRATEGY_REGISTRY["serial"](), lambda: None

    if backend_key == "processes":
        if base != "sdc":
            raise BenchSkip("processes backend only runs SDC")
        from repro.parallel.backends.processes import ProcessSDCCalculator

        calc = ProcessSDCCalculator(
            dims=_strategy_dims(strategy_key),
            n_workers=n_workers,
            kernel_tier=kernel_tier,
        )
        return calc, calc.close

    if backend_key == "sharded":
        if base != "sdc":
            raise BenchSkip("sharded backend only runs SDC")
        from repro.parallel.backends.sharded import ShardedSDCCalculator

        calc = ShardedSDCCalculator(
            n_shards=n_workers,
            dims=_strategy_dims(strategy_key),
            kernel_tier=kernel_tier,
        )
        return calc, calc.close

    from repro.analysis.racecheck import make_backend, make_strategy

    backend = make_backend(backend_key, n_workers)
    strategy = make_strategy(
        base,
        n_threads=n_workers,
        backend=backend,
        dims=_strategy_dims(strategy_key),
    )
    return strategy, backend.close


def _trace_one(
    case_key: str,
    strategy_key: str,
    backend_key: str,
    n_workers: int,
    steps: int,
    registry: MetricsRegistry,
    run_log: Optional[RunLog],
    kernel_tier: Optional[str] = None,
    sample_resources: bool = False,
    sample_interval_s: float = 0.05,
) -> TracedRun:
    """Run one sweep cell under the tracer and record its metrics."""
    from repro.md.simulation import Simulation
    from repro.potentials import fe_potential

    label = f"{case_key}/{strategy_key}/{backend_key}"
    calculator, cleanup = _make_calculator(
        strategy_key, backend_key, n_workers, kernel_tier=kernel_tier
    )
    tier = kernels.get(kernel_tier) if kernel_tier is not None else None
    tier_name = (tier if tier is not None else kernels.active_tier()).name
    tracer = Tracer()
    sampler = None
    try:
        attach = getattr(calculator, "attach_tracer", None)
        if attach is not None:
            attach(tracer)
        if sample_resources:
            from repro.obs.resources import ResourceSampler

            sampler = ResourceSampler(
                interval_s=sample_interval_s, calculator=calculator
            )
            sampler.start()
        atoms = case_by_key(case_key).build(temperature=50.0)
        health = HealthMonitor(calculator=calculator)
        sim = Simulation(
            atoms,
            fe_potential(),
            calculator=calculator,
            tracer=tracer,
            run_log=run_log,
            health=health,
        )
        if run_log is not None:
            run_log.log(
                "event", event="trace-run", run=label, kernel_tier=tier_name
            )
        with kernels.use_tier(tier):
            sim.run(steps, sample_every=1)
        if run_log is not None:
            run_log.log(
                "health",
                event="run-health-summary",
                run=label,
                **health.summary_fields(),
            )
        nlist = sim.nlist
        shard_items = getattr(calculator, "shard_schedule_items", None)
        pairs = getattr(calculator, "pair_partition", None) or getattr(
            calculator, "last_pairs", None
        )
        schedule = getattr(calculator, "schedule", None) or getattr(
            calculator, "last_schedule", None
        )
        if shard_items is not None:
            # one metric set per shard, labeled with the shard dimension
            for shard, shard_pairs, shard_schedule in shard_items():
                record_schedule_metrics(
                    registry, shard_pairs, shard_schedule,
                    shard=shard, run=label,
                )
        elif pairs is not None and schedule is not None:
            record_schedule_metrics(registry, pairs, schedule, run=label)
        elif nlist is not None:
            registry.count("pairs_processed", float(nlist.n_pairs), run=label)
        record_span_metrics(registry, tracer, run=label)
        spans = tracer.spans
        if sampler is not None:
            sampler.stop()
            spans = spans + sampler.counter_spans()
            sampler.record_metrics(registry, run=label)
            sampler.record_health_summary(run=label)
    finally:
        if sampler is not None:
            sampler.stop()
        detach = getattr(calculator, "detach_tracer", None)
        if detach is not None:
            detach()
        cleanup()
    return TracedRun(
        label=label,
        case=case_key,
        strategy=strategy_key,
        backend=backend_key,
        n_workers=n_workers,
        n_steps=steps,
        spans=spans,
        kernel_tier=tier_name,
    )


def run_trace(
    cases: Sequence[str] = DEFAULT_CASES,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    n_workers: int = 2,
    steps: int = 2,
    output_dir: Optional[str] = None,
    on_skip: Optional[Callable[[str], None]] = None,
    store_path: Optional[str] = None,
    kernel_tier: Optional[str] = None,
    sample_resources: bool = False,
    sample_interval_s: float = 0.05,
) -> TraceReport:
    """Trace the sweep; optionally write the three artifacts.

    With ``output_dir`` set, writes ``trace.json``, ``metrics.jsonl`` and
    ``run.jsonl`` there (creating the directory) and records the paths on
    the returned report.  With ``store_path`` set, the metrics and run-log
    streams are also appended to that performance-history store
    (:class:`~repro.obs.history.RunStore`).  With ``sample_resources``,
    a :class:`~repro.obs.resources.ResourceSampler` co-runs with every
    cell and its CPU/RSS/context-switch/shm counter tracks merge into
    ``trace.json`` (summaries into the metrics and health streams).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    registry = MetricsRegistry()
    run_log: Optional[RunLog] = None
    runlog_path: Optional[str] = None
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        runlog_path = os.path.join(output_dir, "run.jsonl")
        run_log = RunLog(runlog_path, meta=collect_run_meta(n_workers))
    else:
        run_log = RunLog(meta=collect_run_meta(n_workers))
    report = TraceReport(runs=[], registry=registry, runlog_path=runlog_path)
    try:
        for case_key in cases:
            for strategy_key in strategies:
                for backend_key in backends:
                    workers = 1 if backend_key == "serial" else n_workers
                    try:
                        report.runs.append(
                            _trace_one(
                                case_key,
                                strategy_key,
                                backend_key,
                                workers,
                                steps,
                                registry,
                                run_log,
                                kernel_tier=kernel_tier,
                                sample_resources=sample_resources,
                                sample_interval_s=sample_interval_s,
                            )
                        )
                    except BenchSkip as skip:
                        message = (
                            f"{case_key}/{strategy_key}/{backend_key}: {skip}"
                        )
                        report.skipped.append(message)
                        if on_skip is not None:
                            on_skip(message)
    finally:
        run_log.close()
    if output_dir is not None:
        report.trace_path = os.path.join(output_dir, "trace.json")
        report.metrics_path = os.path.join(output_dir, "metrics.jsonl")
        report.health_path = os.path.join(output_dir, "health.jsonl")
        write_trace_json(
            report.trace_path,
            report.span_groups(),
            meta=collect_run_meta(n_workers),
        )
        registry.write_jsonl(report.metrics_path)
        get_recorder().dump(report.health_path)
    if store_path is not None:
        from repro.obs.history import RunStore

        store = RunStore(store_path)
        meta = collect_run_meta(n_workers)
        store.append_records(
            "metrics",
            [r.to_dict() for r in registry.records()],
            meta=meta,
            source="metrics.jsonl",
        )
        store.append_records(
            "runlog", run_log.records, meta=meta, source="run.jsonl"
        )
        store.append_records(
            "health",
            get_recorder().records(),
            meta=meta,
            source="health.jsonl",
        )
        report.store_path = store.path
    return report
